"""The six ICCAD-2012-like benchmark pairs (Table I substitution).

Each benchmark pairs a training clip set (``MX_benchmarkN_clip``) with a
testing layout (``Array_benchmarkN``), mirroring Table I's population
*ratios* — highly imbalanced nonhotspot-heavy training sets — at a scale a
pure-Python pipeline can sweep in CI.  The ``scale`` knob multiplies both
clip counts and layout area toward the paper's full sizes.

The substitution rationale lives in DESIGN.md: the detection algorithms
consume only clip geometry and labels, which the planted-motif generator
supplies with exact ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.geometry.rect import Rect
from repro.layout.clip import ClipSet, ClipSpec
from repro.data.patterns import MOTIFS
from repro.data.synth import (
    TestingLayout,
    build_fabric_clip,
    build_testing_layout,
    build_training_clip,
    harvest_training_clips,
)

#: The contest clip geometry: 1.2 um core in a 4.8 um clip at 1 nm DBU.
ICCAD_SPEC = ClipSpec(core_side=1200, clip_side=4800)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Recipe for one benchmark pair.

    ``train_hotspots``/``train_nonhotspots`` follow Table I's imbalance;
    ``test_hotspots`` the planted testing-site count; ``side_um`` the
    testing layout's side in microns; ``process`` cosmetic node metadata.
    The reproduction scales the paper's numbers by ~1/5 for population and
    ~1/4 linearly for area (documented in EXPERIMENTS.md); ``scale``
    rescales further at generation time.
    """

    name: str
    train_hotspots: int
    train_nonhotspots: int
    test_hotspots: int
    test_decoys: int
    side_um: float
    process: str
    motifs: tuple[str, ...]
    seed: int
    #: Fraction of the testing layout covered by fabric bands; the empty
    #: routing channels drive the Table V extraction advantage, and the
    #: per-benchmark variation mirrors Table V's spread (1.6x - 7x).
    fabric_fill: float = 0.6


#: Populations are Table I divided by ~5, areas scaled to keep the planted
#: density comparable; each benchmark draws a different motif subset so the
#: benchmarks differ in topology diversity just as the contest suites do.
_ALL = tuple(m.name for m in MOTIFS)
BENCHMARKS: tuple[BenchmarkConfig, ...] = (
    BenchmarkConfig("benchmark1", 32, 100, 45, 20, 46.0, "32nm", _ALL[:4], 101, 0.45),
    BenchmarkConfig("benchmark2", 50, 280, 60, 40, 56.0, "28nm", _ALL[2:7], 102, 0.70),
    BenchmarkConfig(
        "benchmark3", 90, 300, 110, 40, 60.0, "28nm", _ALL + ("ambit_t2t",), 103, 0.70
    ),
    BenchmarkConfig(
        "benchmark4", 32, 240, 38, 40, 78.0, "28nm", _ALL[4:] + ("ambit_t2t",), 104, 0.25
    ),
    BenchmarkConfig("benchmark5", 16, 180, 12, 30, 40.0, "28nm", _ALL[1:5], 105, 0.30),
    BenchmarkConfig("blind", 32, 100, 14, 30, 46.0, "32nm", _ALL[:4], 106, 0.50),
)

_BY_NAME = {cfg.name: cfg for cfg in BENCHMARKS}


@dataclass
class Benchmark:
    """A generated benchmark pair: training clips + testing layout."""

    config: BenchmarkConfig
    training: ClipSet
    testing: TestingLayout

    @property
    def name(self) -> str:
        return self.config.name

    def stats(self) -> dict:
        """Table I-style statistics row."""
        return {
            "name": self.name,
            "train_hs": len(self.training.hotspots()),
            "train_nhs": len(self.training.non_hotspots()),
            "test_hs": len(self.testing.hotspot_cores()),
            "area_um2": round(self.testing.area_um2, 1),
            "process": self.config.process,
        }


def benchmark_config(name: str) -> BenchmarkConfig:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DataError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def generate_training_set(
    config: BenchmarkConfig,
    scale: float = 1.0,
    spec: ClipSpec = ICCAD_SPEC,
    rng: Optional[np.random.Generator] = None,
) -> ClipSet:
    """Generate the labelled training clip set of one benchmark.

    Training clips are harvested from a dedicated *training layout* built
    with the same planting machinery as the testing layout (different
    seed) — the same provenance the contest archives have, so the
    training distribution covers the topology variety evaluation-time
    extraction will see (arrays, companions, ambit cases, borderline
    decoys).  Roughly 40 % of the nonhotspot population is plain routing
    fabric, as real archives are dominated by ordinary layout.
    """
    rng = rng or np.random.default_rng(config.seed)
    hotspot_count = max(2, round(config.train_hotspots * scale))
    nonhotspot_count = max(4, round(config.train_nonhotspots * scale))
    fabric_count = nonhotspot_count * 2 // 5
    decoy_count = nonhotspot_count - fabric_count

    # Size the training layout to fit the population.
    total = hotspot_count + decoy_count
    side = _side_for_sites(total, config.fabric_fill, spec)
    planted = build_testing_layout(
        rng,
        spec,
        Rect(0, 0, side, side),
        hotspot_count=hotspot_count,
        decoy_count=decoy_count,
        motif_names=config.motifs,
        fabric_fill=config.fabric_fill,
    )
    clips = harvest_training_clips(planted, fabric_count, rng)
    clip_set = ClipSet(spec)
    for clip in clips:
        clip_set.add(clip)
    return clip_set


def _side_for_sites(total: int, fabric_fill: float, spec: ClipSpec) -> int:
    """Window side that comfortably fits ``total`` planted sites."""
    side = 30_000
    while True:
        # Match build_testing_layout's anchor arithmetic conservatively:
        # x anchors every 1.5 cores, y rows limited by band capacity.
        margin = spec.ambit_margin + spec.core_side
        step = spec.core_side + spec.core_side // 2
        xs = max(1, (side - 2 * margin - spec.core_side) // step)
        usable_band = fabric_fill * (side - 2 * margin)
        band_height = 37 * 192  # mean band
        per_band_rows = max(1, int((band_height - 5400) // step) + 1)
        band_count = max(1, int(usable_band / band_height))
        ys = band_count * per_band_rows
        if xs * ys >= total * 2 or side > 400_000:
            return side
        side += 10_000


def generate_testing_layout(
    config: BenchmarkConfig,
    scale: float = 1.0,
    spec: ClipSpec = ICCAD_SPEC,
    rng: Optional[np.random.Generator] = None,
) -> TestingLayout:
    """Generate the testing layout of one benchmark."""
    rng = rng or np.random.default_rng(config.seed + 1_000)
    side = int(config.side_um * 1000 * (scale**0.5))
    hotspot_count = max(2, round(config.test_hotspots * scale))
    decoy_count = max(1, round(config.test_decoys * scale))
    # Small scales shrink the area (by sqrt) faster than the site count
    # (linear); grow the window until the site grid fits.
    while True:
        try:
            return build_testing_layout(
                np.random.default_rng(config.seed + 1_000),
                spec,
                Rect(0, 0, side, side),
                hotspot_count=hotspot_count,
                decoy_count=decoy_count,
                motif_names=config.motifs,
                fabric_fill=config.fabric_fill,
            )
        except DataError:
            side = int(side * 1.2)
            if side > 1_000_000:
                raise


def generate_benchmark(
    name: str,
    scale: float = 1.0,
    spec: ClipSpec = ICCAD_SPEC,
) -> Benchmark:
    """Generate one full benchmark pair deterministically by name."""
    if scale <= 0:
        raise DataError(f"scale must be positive, got {scale}")
    config = benchmark_config(name)
    training = generate_training_set(config, scale, spec)
    testing = generate_testing_layout(config, scale, spec)
    return Benchmark(config, training, testing)


def generate_all(scale: float = 1.0, names: Optional[Sequence[str]] = None) -> list[Benchmark]:
    """Generate every benchmark (or a named subset)."""
    selected = names if names is not None else [cfg.name for cfg in BENCHMARKS]
    return [generate_benchmark(name, scale) for name in selected]
