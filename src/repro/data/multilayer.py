"""Two-layer and double-patterning benchmark data (Section IV workloads).

The multilayer mechanism mirrors Fig. 13's premise: a metal-1 tip-to-tip
pair at a *dead-zone* gap is harmless on its own, but becomes a hotspot
when a metal-2 wire crosses directly over the gap (the crossing couples
the layers optically/electrically through the via region).  Single-layer
features cannot separate the two cases; the Section IV-A overlap features
can.

The DPT workload plants patterns whose combined geometry is identical but
whose decomposition differs in same-mask spacing — the Fig. 14 situation
where mask-aware features are required.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.patterns import _gap, _rint, _wire_width  # shared jitter helpers
from repro.data.synth import FABRIC_SPACING, anchor_of, fabric_rects
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.multilayer.features import MultiLayerClip

#: Layer numbering for the two-layer workload.
METAL1, METAL2 = 1, 2


def build_multilayer_clip(
    rng: np.random.Generator,
    spec: ClipSpec,
    hotspot: bool,
) -> MultiLayerClip:
    """One labelled two-layer clip (the Fig. 13-style workload).

    Metal 1 carries a tip-to-tip pair at a dead-zone gap (identical
    distribution for both labels); metal 2 carries vertical routing.  In
    the hotspot variant one metal-2 wire crosses exactly over the metal-1
    gap; in the safe variant the crossing keeps clear of it.
    """
    nominal = spec.core_of(spec.clip_at(0, 0))
    width = _wire_width(rng)
    gap = _rint(rng, 76, 84)  # dead zone: label is decided by metal 2
    y = nominal.y0 + nominal.height // 3 + _rint(rng, -60, 60)
    x0 = nominal.x0 + _rint(rng, 40, 120)
    mid = nominal.x0 + nominal.width // 2 + _rint(rng, -80, 80)
    right = nominal.x1 - _rint(rng, 20, 60)
    metal1 = [
        Rect(x0, y, mid - gap // 2, y + width),
        Rect(mid + (gap + 1) // 2, y, right, y + width),
    ]

    ax, ay = anchor_of(metal1, spec.core_side)
    core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
    window = spec.clip_for_core(core)

    # Metal 2: vertical wires across the core; the critical one either
    # crosses the metal-1 gap (hotspot) or keeps a half-core clear of it.
    m2_width = _wire_width(rng)
    if hotspot:
        cross_x = mid - m2_width // 2
    else:
        cross_x = mid + spec.core_side // 2 + _rint(rng, 0, 150)
    metal2 = [
        Rect(cross_x, core.y0 - 600, cross_x + m2_width, core.y1 + 600),
        Rect(
            core.x0 - 500,
            core.y0 - 600,
            core.x0 - 500 + m2_width,
            core.y1 + 600,
        ),
    ]

    # Fabric ambit on metal 1 only, outside the anchored core.
    ambit = fabric_rects(rng, window, [core.expanded(FABRIC_SPACING)])
    label = ClipLabel.HOTSPOT if hotspot else ClipLabel.NON_HOTSPOT
    return MultiLayerClip.build(
        window,
        spec,
        {METAL1: metal1 + ambit, METAL2: metal2},
        label,
    )


def generate_multilayer_set(
    hotspot_count: int,
    nonhotspot_count: int,
    spec: Optional[ClipSpec] = None,
    seed: int = 404,
) -> list[MultiLayerClip]:
    """A labelled two-layer clip population."""
    spec = spec or ClipSpec()
    rng = np.random.default_rng(seed)
    clips = [build_multilayer_clip(rng, spec, True) for _ in range(hotspot_count)]
    clips += [build_multilayer_clip(rng, spec, False) for _ in range(nonhotspot_count)]
    return clips


def build_dpt_clip(
    rng: np.random.Generator,
    spec: ClipSpec,
    hotspot: bool,
) -> Clip:
    """One labelled single-layer clip for the DPT workload (Fig. 14).

    The pattern is a three-wire comb at a pitch that *requires* double
    patterning.  In the safe variant the wires alternate masks cleanly
    (even count of conflicts); in the hotspot variant a fourth wire closes
    an odd conflict cycle region — after decomposition two same-mask wires
    end up at sub-threshold same-mask spacing.
    """
    nominal = spec.core_of(spec.clip_at(0, 0))
    width = _wire_width(rng)
    # below the same-mask threshold: adjacent wires must alternate masks
    tight = _rint(rng, 50, 70)
    x = nominal.x0 + _rint(rng, 80, 160)
    y0 = nominal.y0 + _rint(rng, 100, 200)
    y1 = nominal.y1 - _rint(rng, 100, 200)
    pitch = width + tight
    wires = [Rect(x + i * pitch, y0, x + i * pitch + width, y1) for i in range(3)]
    if hotspot:
        # An L-hook off wire 0 that approaches wire 2's mask partner,
        # forcing a same-mask sub-threshold pair after 2-colouring.
        hook_y = y1 - width
        wires.append(
            Rect(x, hook_y + width + tight, x + 2 * pitch + width, hook_y + 2 * width + tight)
        )
    ax, ay = anchor_of(wires, spec.core_side)
    core = Rect(ax, ay, ax + spec.core_side, ay + spec.core_side)
    window = spec.clip_for_core(core)
    ambit = fabric_rects(rng, window, [core.expanded(FABRIC_SPACING)])
    label = ClipLabel.HOTSPOT if hotspot else ClipLabel.NON_HOTSPOT
    return Clip.build(window, spec, wires + ambit, label)


def generate_dpt_set(
    hotspot_count: int,
    nonhotspot_count: int,
    spec: Optional[ClipSpec] = None,
    seed: int = 505,
) -> list[Clip]:
    """A labelled DPT clip population."""
    spec = spec or ClipSpec()
    rng = np.random.default_rng(seed)
    clips = [build_dpt_clip(rng, spec, True) for _ in range(hotspot_count)]
    clips += [build_dpt_clip(rng, spec, False) for _ in range(nonhotspot_count)]
    return clips
