"""Synthetic benchmark data: motif zoo, fabric, ICCAD-2012-like pairs."""

from repro.data.patterns import MOTIFS, Motif, generate_motif, motif_by_name
from repro.data.synth import (
    FABRIC_PITCH,
    FABRIC_SPACING,
    FABRIC_WIDTH,
    PlantedSite,
    TestingLayout,
    anchor_of,
    build_fabric_clip,
    build_testing_layout,
    build_training_clip,
    fabric_rects,
)
from repro.data.benchmarks import (
    BENCHMARKS,
    ICCAD_SPEC,
    Benchmark,
    BenchmarkConfig,
    benchmark_config,
    generate_all,
    generate_benchmark,
    generate_testing_layout,
    generate_training_set,
)

__all__ = [
    "MOTIFS",
    "Motif",
    "motif_by_name",
    "generate_motif",
    "FABRIC_PITCH",
    "FABRIC_WIDTH",
    "FABRIC_SPACING",
    "fabric_rects",
    "build_training_clip",
    "build_fabric_clip",
    "anchor_of",
    "build_testing_layout",
    "PlantedSite",
    "TestingLayout",
    "BENCHMARKS",
    "ICCAD_SPEC",
    "Benchmark",
    "BenchmarkConfig",
    "benchmark_config",
    "generate_benchmark",
    "generate_training_set",
    "generate_testing_layout",
    "generate_all",
]
