"""Parametric lithography hotspot / nonhotspot pattern zoo.

The ICCAD-2012 contest benchmarks are proprietary, so the reproduction
plants synthetic failure motifs whose geometry mirrors the classic 32/28 nm
metal-layer lithography weak points:

- ``tip2tip``   — two wire ends facing across a sub-resolution gap,
- ``tip2side``  — a wire end too close to the flank of a crossing wire,
- ``pinch``     — a neck in a wire narrow enough to break,
- ``bridge``    — a long parallel run at sub-threshold spacing,
- ``corner``    — convex corners in a diagonal near-touch,
- ``comb``      — a line sandwiched inside a dense comb,
- ``ushape``    — a U bend whose notch is too tight,
- ``jog``       — a staircase jog with a tight diagonal step.

Each motif generator emits rectangle geometry for a core window in both a
*hotspot* regime (critical dimension below the failure threshold) and a
*nonhotspot* regime (comfortably above it).  The margin between regimes is
what makes the planted ground truth learnable — the role lithography
simulation plays for real foundry training sets.

**Structural stability invariant.**  Within one motif family the rectangle
*structure* is fixed — the same rectangle count, the same edge ordering,
the same window-boundary contacts — and only dimensions jitter.  Instances
of a family therefore share their directional-string topology, which is
the property the paper's clustering premise rests on ("the patterns within
one cluster have very similar geometrical characteristics").  Each family
also pins a unique lexicographically-least rectangle corner so the
extraction-anchor rule (:func:`repro.data.synth.anchor_of`) lands on the
same structural corner for every instance.

All dimensions are in DBU (1 nm); wire widths sit at 60-100 nm, matching
32/28 nm-node metal layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import DataError
from repro.geometry.rect import Rect

MotifGenerator = Callable[[np.random.Generator, bool, Rect], list[Rect]]


def _rint(rng: np.random.Generator, low: int, high: int) -> int:
    """Uniform integer in [low, high], inclusive, as a Python int."""
    return int(rng.integers(low, high + 1))


#: Gap regimes in nm.  ``hotspot`` fails lithography, ``safe`` prints,
#: ``borderline`` prints but sits just above the dead zone — decoys drawn
#: from it create the false-alarm pressure the paper's feedback kernel and
#: redundant clip removal exist to handle.  The 76-84 nm dead zone keeps
#: labels consistent.
GAP_REGIMES = {
    "hotspot": (40, 75),
    "safe": (85, 200),
    "borderline": (85, 110),
}


def _gap(rng: np.random.Generator, hotspot) -> int:
    """A critical spacing drawn from the requested regime.

    ``hotspot`` may be a bool (True = hotspot regime, False = safe) or a
    regime name from :data:`GAP_REGIMES`.
    """
    if isinstance(hotspot, bool):
        regime = "hotspot" if hotspot else "safe"
    else:
        regime = hotspot
    low, high = GAP_REGIMES[regime]
    return _rint(rng, low, high)


def _wire_width(rng: np.random.Generator) -> int:
    return _rint(rng, 60, 100)


def tip2tip(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """Two collinear wires with facing ends, plus a track above.

    Structure (left to right, bottom to top): left wire (the anchor
    rectangle — strictly smallest x0), gap, right wire reaching the right
    window edge; a full-width companion track above both.
    """
    width = _wire_width(rng)
    gap = _gap(rng, hotspot)
    y = window.y0 + window.height // 3 + _rint(rng, -60, 60)
    x0 = window.x0 + _rint(rng, 40, 120)
    mid = window.x0 + window.width // 2 + _rint(rng, -80, 80)
    track_y = y + width + _rint(rng, 170, 280)
    # One shared right margin keeps the wire and track ends aligned, so
    # the slice structure (and hence the string key) is family-stable.
    right = window.x1 - _rint(rng, 20, 60)
    return [
        Rect(x0, y, mid - gap // 2, y + width),
        Rect(mid + (gap + 1) // 2, y, right, y + width),
        Rect(x0 + 200, track_y, right, track_y + width),
    ]


def tip2side(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """A vertical wire end approaching the flank of a horizontal wire.

    Structure: a near-full-width horizontal wire (anchor), and a vertical
    wire rising from ``gap`` above it to the top window edge.
    """
    width = _wire_width(rng)
    gap = _gap(rng, hotspot)
    base_y = window.y0 + _rint(rng, 160, 280)
    x0 = window.x0 + _rint(rng, 40, 120)
    x = window.x0 + window.width // 2 + _rint(rng, -120, 120)
    return [
        Rect(x0, base_y, window.x1 - _rint(rng, 20, 60), base_y + width),
        Rect(x, base_y + width + gap, x + width, window.y1),
    ]


def pinch(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """A wide wire with a narrow neck in the middle (necking/pinching).

    Structure: wide arm (anchor), centred neck, wide arm.
    """
    wide = _rint(rng, 180, 260)
    neck = _rint(rng, 30, 50) if hotspot else _rint(rng, 120, 170)
    y = window.y0 + window.height // 2 + _rint(rng, -80, 80)
    x0 = window.x0 + _rint(rng, 40, 120)
    neck_x0 = window.x0 + window.width // 2 - _rint(rng, 60, 140)
    neck_x1 = neck_x0 + _rint(rng, 140, 260)
    neck_y = y + (wide - neck) // 2
    return [
        Rect(x0, y, neck_x0, y + wide),
        Rect(neck_x0, neck_y, neck_x1, neck_y + neck),
        Rect(neck_x1, y, window.x1 - _rint(rng, 20, 60), y + wide),
    ]


def bridge(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """Two long parallel wires at (sub)threshold spacing, stub below.

    Structure: lower wire (anchor) and upper wire sharing x extents, plus
    a vertical stub dropping from below the pair to the bottom edge.
    """
    width = _wire_width(rng)
    gap = _gap(rng, hotspot)
    y = window.y0 + window.height // 2 + _rint(rng, -60, 60)
    x0 = window.x0 + _rint(rng, 40, 120)
    x1 = window.x1 - _rint(rng, 20, 60)
    stub_x = x0 + 300 + _rint(rng, 0, 200)
    return [
        Rect(x0, y, x1, y + width),
        Rect(x0, y + width + gap, x1, y + 2 * width + gap),
        Rect(stub_x, window.y0, stub_x + width, y - _rint(rng, 150, 260)),
    ]


def corner(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """Two rectangles in diagonal corner-to-corner proximity.

    Structure: lower-left box (anchor) and upper-right box separated
    diagonally by ``gap`` on both axes.
    """
    gap = _gap(rng, hotspot)
    size_a = _rint(rng, 220, 380)
    size_b = _rint(rng, 220, 380)
    cx = window.x0 + window.width // 2 + _rint(rng, -60, 60)
    cy = window.y0 + window.height // 2 + _rint(rng, -60, 60)
    return [
        Rect(cx - size_a, cy - size_a, cx, cy),
        Rect(cx + gap, cy + gap, cx + gap + size_b, cy + gap + size_b),
    ]


def comb(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """Comb fingers at critical pitch filling the window width.

    Structure: vertical fingers (the leftmost is the anchor) spanning
    most of the window height at pitch ``width + gap``, repeated across
    the window.  The finger count is a function of the pitch, so
    instances at the same pitch share topology; planting the comb in a
    wide (multi-core) window yields a periodic array whose every finger
    corner anchors a topologically identical candidate — the redundancy
    redundant clip removal collapses (Fig. 12).
    """
    width = _wire_width(rng)
    gap = _gap(rng, hotspot)
    pitch = width + gap
    x = window.x0 + _rint(rng, 60, 140)
    y0 = window.y0 + _rint(rng, 100, 200)
    y1 = window.y1 - _rint(rng, 100, 200)
    out = []
    while x + width <= window.x1 - 60:
        out.append(Rect(x, y0, x + width, y1))
        x += pitch
    return out


def ushape(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """A U bend whose inner notch spacing is the critical dimension.

    Structure: bottom bar (anchor — smallest x0 and y0), left arm, right
    arm across the notch.
    """
    width = _wire_width(rng)
    notch = _gap(rng, hotspot)
    x0 = window.x0 + _rint(rng, 60, 150)
    y0 = window.y0 + _rint(rng, 200, 320)
    height = _rint(rng, 420, 680)
    return [
        Rect(x0, y0 - width, x0 + 2 * width + notch, y0),
        Rect(x0, y0, x0 + width, y0 + height),
        Rect(x0 + width + notch, y0, x0 + 2 * width + notch, y0 + height),
    ]


def jog(rng: np.random.Generator, hotspot: bool, window: Rect) -> list[Rect]:
    """A staircase jog with a tight diagonal step.

    Structure: lower wire (anchor) from the left edge region to mid, upper
    wire from mid+gap to the right edge region one step up, and a short
    riser under the upper wire's start.
    """
    width = _wire_width(rng)
    gap = _gap(rng, hotspot)
    y = window.y0 + window.height // 2 + _rint(rng, -60, 60)
    x_mid = window.x0 + window.width // 2 + _rint(rng, -80, 80)
    step = width + gap
    riser_drop = _rint(rng, 30, 60)
    return [
        Rect(window.x0 + _rint(rng, 40, 120), y, x_mid, y + width),
        Rect(x_mid + gap, y + step, window.x1 - _rint(rng, 20, 60), y + step + width),
        Rect(x_mid + gap, y + step - riser_drop, x_mid + gap + width, y + step),
    ]


def ambit_t2t(
    rng: np.random.Generator, hotspot: bool, window: Rect
) -> tuple[list[Rect], list[Rect]]:
    """The Fig. 10 pattern: identical cores, ambit decides the label.

    The core holds a tip-to-tip pair whose gap sits in the *dead zone*
    (76-84 nm) — printable in isolation, failing under optical crowding.
    The hotspot variant surrounds the core with dense ambit tracks; the
    safe variant leaves the ambit empty.  Core-region features cannot
    separate the two, which is precisely the situation the paper's
    feedback kernel exists for.

    Returns ``(core_rects, ambit_rects)``; ambit rectangles lie outside
    the anchored core window.
    """
    width = _wire_width(rng)
    gap = _rint(rng, 76, 84)
    y = window.y0 + window.height // 3 + _rint(rng, -60, 60)
    x0 = window.x0 + _rint(rng, 40, 120)
    mid = window.x0 + window.width // 2 + _rint(rng, -80, 80)
    right = window.x1 - _rint(rng, 20, 60)
    core_rects = [
        Rect(x0, y, mid - gap // 2, y + width),
        Rect(mid + (gap + 1) // 2, y, right, y + width),
    ]
    ambit_rects: list[Rect] = []
    if hotspot:
        # Dense crowding tracks above and below the anchored core window.
        ax, ay = x0, y  # the anchor corner (left wire, smallest x0/y0)
        core_side = window.height  # plant callers pass a core-sized window
        for row in range(3):
            ty = ay + core_side + 150 + row * 260
            ambit_rects.append(Rect(ax - 300, ty, ax + core_side + 300, ty + 120))
        for row in range(3):
            ty = ay - 270 - row * 260
            ambit_rects.append(Rect(ax - 300, ty, ax + core_side + 300, ty + 120))
    return core_rects, ambit_rects


#: Name of the ambit-sensitive motif; it is generated via
#: :func:`generate_ambit_motif` rather than :func:`generate_motif`.
AMBIT_MOTIF = "ambit_t2t"


def generate_ambit_motif(
    rng: np.random.Generator, hotspot: bool, window: Rect
) -> tuple[list[Rect], list[Rect]]:
    """Generate the ambit-sensitive motif (core rects, ambit rects)."""
    core_rects, ambit_rects = ambit_t2t(rng, hotspot, window)
    return core_rects, ambit_rects


@dataclass(frozen=True)
class Motif:
    """A named motif generator."""

    name: str
    generate: MotifGenerator


MOTIFS: tuple[Motif, ...] = (
    Motif("tip2tip", tip2tip),
    Motif("tip2side", tip2side),
    Motif("pinch", pinch),
    Motif("bridge", bridge),
    Motif("corner", corner),
    Motif("comb", comb),
    Motif("ushape", ushape),
    Motif("jog", jog),
)

_MOTIF_BY_NAME = {m.name: m for m in MOTIFS}


def motif_by_name(name: str) -> Motif:
    """Look up a motif; raises :class:`~repro.errors.DataError` if unknown."""
    try:
        return _MOTIF_BY_NAME[name]
    except KeyError:
        raise DataError(
            f"unknown motif {name!r}; available: {sorted(_MOTIF_BY_NAME)}"
        ) from None


def generate_motif(
    name: str,
    rng: np.random.Generator,
    hotspot,
    window: Rect,
) -> list[Rect]:
    """Generate one motif instance, clipped to stay inside the window.

    ``hotspot`` is a bool or a regime name ("hotspot" / "safe" /
    "borderline") forwarded to the gap draw.
    """
    rects = motif_by_name(name).generate(rng, hotspot, window)
    clipped = [r for r in (rect.intersection(window) for rect in rects) if r]
    if not clipped:
        raise DataError(f"motif {name!r} generated no in-window geometry")
    return _remove_overlaps(clipped)


def _remove_overlaps(rects: Sequence[Rect]) -> list[Rect]:
    """Drop later rectangles that overlap earlier ones.

    Motif geometry is disjoint by construction; this guards the invariant
    against future motif edits rather than silently producing double
    coverage.
    """
    out: list[Rect] = []
    for rect in rects:
        if not any(rect.overlaps(kept) for kept in out):
            out.append(rect)
    return out
