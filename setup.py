"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` on this offline image falls back to the legacy
``setup.py develop`` path, which needs this file.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
