"""Section I — the four detection-approach categories, quantified.

The paper's introduction surveys four approaches and their trade-offs:

1. lithography simulation — "most accurate ... extremely high
   computational complexity and long runtime";
2. pattern matching — "fastest ... limited flexibility to recognize
   previously unseen" patterns;
3. machine learning — "good at detecting unknown hotspots but need
   special treatments to suppress the false alarm";
4. hybrid — "enhance accuracy and reduce false alarm but may consume
   longer runtimes".

This bench runs all four on one benchmark and checks the qualitative
ordering the paper asserts: simulation is the slowest per clip; the
pattern matcher is the fastest; the hybrid union never has fewer hits
than either engine alone.
"""

import time

from repro.baselines.hybrid import HybridDetector
from repro.baselines.pattern_match import PatternMatcher
from repro.data.benchmarks import ICCAD_SPEC
from repro.litho.simulator import LithoSimDetector

from conftest import get_benchmark, get_detector, print_table


def test_intro_category_comparison(once):
    bench = get_benchmark("benchmark1")
    rows = []
    timings = {}
    scores = {}

    sim = LithoSimDetector(ICCAD_SPEC)
    started = time.perf_counter()
    sim_report = sim.score(bench.testing)
    timings["litho_sim"] = time.perf_counter() - started
    scores["litho_sim"] = sim_report.score
    per_clip_sim = timings["litho_sim"] / max(1, sim_report.candidate_count)

    matcher = PatternMatcher()
    matcher.fit(bench.training)
    started = time.perf_counter()
    pm_report = matcher.score(bench.testing)
    timings["pattern_match"] = time.perf_counter() - started
    scores["pattern_match"] = pm_report.score
    per_clip_pm = timings["pattern_match"] / max(1, pm_report.candidate_count)

    detector = get_detector("benchmark1", "ours")
    started = time.perf_counter()
    ml_report = detector.score(bench.testing)
    timings["machine_learning"] = time.perf_counter() - started
    scores["machine_learning"] = ml_report.score

    hybrid = HybridDetector(mode="union")
    hybrid.fit(bench.training)
    started = time.perf_counter()
    hybrid_report = hybrid.score(bench.testing)
    timings["hybrid_union"] = time.perf_counter() - started
    scores["hybrid_union"] = hybrid_report.score

    for label in ("litho_sim", "pattern_match", "machine_learning", "hybrid_union"):
        score = scores[label]
        rows.append(
            (
                label,
                score.hits,
                score.extras,
                f"{score.accuracy:.2%}",
                f"{timings[label]:.1f}s",
            )
        )
    print_table(
        "Section I: detection-approach categories (benchmark1)",
        ["approach", "#hit", "#extra", "accuracy", "eval time"],
        rows,
    )

    # Qualitative ordering asserted by the paper's survey.
    assert per_clip_sim > per_clip_pm, "simulation must be slower per clip than PM"
    assert timings["litho_sim"] > timings["pattern_match"]
    assert scores["hybrid_union"].hits >= scores["machine_learning"].hits
    assert scores["hybrid_union"].hits >= scores["pattern_match"].hits
    # The ML framework suppresses false alarms better than raw PM+union.
    assert scores["machine_learning"].extras <= scores["hybrid_union"].extras

    once(matcher.score, bench.testing)
