"""Shared state for the experiment benches.

Benchmark pairs and trained detectors are generated once per session and
cached; each bench file prints its paper-style table to stdout (captured
by ``pytest -s`` or the bench harness) and times a representative kernel
of work through the ``benchmark`` fixture.

Scales are chosen so the full bench suite completes in minutes on a
laptop; EXPERIMENTS.md records the mapping to the paper's full-size runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.data.benchmarks import generate_benchmark

#: Per-benchmark generation scales used throughout the bench suite.
BENCH_SCALES = {
    "benchmark1": 1.0,
    "benchmark2": 0.5,
    "benchmark3": 0.5,
    "benchmark4": 0.8,
    "benchmark5": 1.0,
    "blind": 1.0,
}

_bench_cache: dict = {}
_detector_cache: dict = {}


def get_benchmark(name: str):
    """Session-cached benchmark pair at its bench scale."""
    if name not in _bench_cache:
        _bench_cache[name] = generate_benchmark(name, BENCH_SCALES[name])
    return _bench_cache[name]


def get_detector(name: str, variant: str) -> HotspotDetector:
    """Session-cached trained detector for (benchmark, config variant)."""
    key = (name, variant)
    if key not in _detector_cache:
        config = {
            "ours": DetectorConfig.ours,
            "ours_med": DetectorConfig.ours_med,
            "ours_low": DetectorConfig.ours_low,
            "basic": DetectorConfig.basic,
            "topology": DetectorConfig.with_topology,
            "removal": DetectorConfig.with_removal,
        }[variant]()
        detector = HotspotDetector(config)
        detector.fit(get_benchmark(name).training)
        _detector_cache[key] = detector
    return _detector_cache[key]


def print_table(title: str, headers: list, rows: list) -> None:
    """Print an aligned text table (the bench harness's 'paper table')."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


# ----------------------------------------------------------------------
# BENCH_<name>.json result writer
#
# Every bench_*.py module gets one machine-readable result file at the
# repo root (override the directory with REPRO_BENCH_DIR): per-test
# outcomes and durations, the pipeline-stage totals the obs tracer saw
# while that module's tests ran, and any headline numbers the module
# reported through :func:`record_metrics`.  CI and ad-hoc runs can diff
# these files across commits without scraping stdout tables.
# ----------------------------------------------------------------------
_bench_results: dict = {}
_last_stage_totals: dict = {}


def _bench_key(module_file) -> str:
    stem = Path(str(module_file)).stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def _bench_entry(key: str) -> dict:
    return _bench_results.setdefault(
        key, {"tests": {}, "stages": {}, "metrics": {}}
    )


def record_metrics(module_file, **metrics) -> None:
    """Attach headline metrics to the module's ``BENCH_<name>.json``.

    Bench modules call ``record_metrics(__file__, accuracy=..., ...)``
    with whatever numbers their printed table summarises.
    """
    _bench_entry(_bench_key(module_file))["metrics"].update(metrics)


def _stage_delta() -> dict:
    """Stage totals accumulated since the previous snapshot."""
    global _last_stage_totals
    totals = obs.get_tracer().stage_totals()
    delta = {}
    for name, entry in totals.items():
        last = _last_stage_totals.get(name, {})
        count = entry["count"] - last.get("count", 0)
        if count <= 0:
            continue
        delta[name] = {
            "count": count,
            "wall_s": round(entry["wall_s"] - last.get("wall_s", 0.0), 6),
            "cpu_s": round(entry["cpu_s"] - last.get("cpu_s", 0.0), 6),
        }
    _last_stage_totals = totals
    return delta


def pytest_sessionstart(session):
    # Trace the whole bench session; spans bound the store, tallies don't.
    obs.set_tracer(obs.Tracer(max_spans=200_000))


def pytest_runtest_logreport(report):
    if report.when != "call":
        return
    path = report.nodeid.split("::", 1)[0]
    if not Path(path).name.startswith("bench_"):
        return
    entry = _bench_entry(_bench_key(path))
    test_name = report.nodeid.split("::", 1)[-1]
    entry["tests"][test_name] = {
        "outcome": report.outcome,
        "seconds": round(report.duration, 3),
    }
    # Tests run sequentially, so the tracer delta since the last bench
    # test belongs to this module.
    for name, stage in _stage_delta().items():
        merged = entry["stages"].setdefault(
            name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        merged["count"] += stage["count"]
        merged["wall_s"] = round(merged["wall_s"] + stage["wall_s"], 6)
        merged["cpu_s"] = round(merged["cpu_s"] + stage["cpu_s"], 6)


def pytest_sessionfinish(session, exitstatus):
    try:
        out_dir = Path(os.environ.get("REPRO_BENCH_DIR", session.config.rootpath))
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass
        environment = obs.environment_summary()
        for key, entry in _bench_results.items():
            payload = {
                "bench": key,
                "created_unix": time.time(),
                "environment": environment,
                **entry,
            }
            target = out_dir / f"BENCH_{key}.json"
            try:
                target.write_text(json.dumps(payload, indent=2) + "\n")
            except OSError as exc:
                print(f"bench writer: cannot write {target}: {exc}")
    finally:
        obs.set_tracer(None)


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy end-to-end work)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
