"""Shared state for the experiment benches.

Benchmark pairs and trained detectors are generated once per session and
cached; each bench file prints its paper-style table to stdout (captured
by ``pytest -s`` or the bench harness) and times a representative kernel
of work through the ``benchmark`` fixture.

Scales are chosen so the full bench suite completes in minutes on a
laptop; EXPERIMENTS.md records the mapping to the paper's full-size runs.
"""

import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.data.benchmarks import generate_benchmark

#: Per-benchmark generation scales used throughout the bench suite.
BENCH_SCALES = {
    "benchmark1": 1.0,
    "benchmark2": 0.5,
    "benchmark3": 0.5,
    "benchmark4": 0.8,
    "benchmark5": 1.0,
    "blind": 1.0,
}

_bench_cache: dict = {}
_detector_cache: dict = {}


def get_benchmark(name: str):
    """Session-cached benchmark pair at its bench scale."""
    if name not in _bench_cache:
        _bench_cache[name] = generate_benchmark(name, BENCH_SCALES[name])
    return _bench_cache[name]


def get_detector(name: str, variant: str) -> HotspotDetector:
    """Session-cached trained detector for (benchmark, config variant)."""
    key = (name, variant)
    if key not in _detector_cache:
        config = {
            "ours": DetectorConfig.ours,
            "ours_med": DetectorConfig.ours_med,
            "ours_low": DetectorConfig.ours_low,
            "basic": DetectorConfig.basic,
            "topology": DetectorConfig.with_topology,
            "removal": DetectorConfig.with_removal,
        }[variant]()
        detector = HotspotDetector(config)
        detector.fit(get_benchmark(name).training)
        _detector_cache[key] = detector
    return _detector_cache[key]


def print_table(title: str, headers: list, rows: list) -> None:
    """Print an aligned text table (the bench harness's 'paper table')."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy end-to-end work)."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
