"""Section IV extensions — multilayer and double-patterning workloads.

Two experiments the paper describes qualitatively (Figs. 13-14), made
quantitative here:

- **multilayer**: cross-layer hotspots (a metal-2 wire crossing a metal-1
  dead-zone gap) are invisible to single-layer features but separable
  with the Section IV-A per-layer + overlap feature stack;
- **DPT**: patterns identical in combined geometry but differing in
  decomposed same-mask spacing are separable only with the Section IV-B
  three-mask feature stack.
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.training import train_multi_kernel
from repro.data.multilayer import generate_dpt_set, generate_multilayer_set
from repro.layout.clip import ClipLabel, ClipSet, ClipSpec
from repro.multilayer.detector import DptDetector, MultiLayerDetector

from conftest import print_table

SPEC = ClipSpec()


def test_multilayer_extension(once):
    clips = generate_multilayer_set(16, 24, SPEC)
    train = clips[:12] + clips[16:34]
    test = clips[12:16] + clips[34:]
    truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])

    # Section IV-A detector (metal1 + metal2 + overlap features).
    detector = MultiLayerDetector(DetectorConfig.ours())
    detector.fit(train)
    multi_accuracy = float((detector.predict(test) == truth).mean())

    # Single-layer control: the same patterns seen on metal 1 only.
    single_train = ClipSet(SPEC)
    for clip in train:
        single_train.add(clip.layer_clip(1))
    single_model = train_multi_kernel(single_train, DetectorConfig.ours())
    single_pred = single_model.predict([c.layer_clip(1) for c in test])
    single_accuracy = float((single_pred == truth).mean())

    print_table(
        "Extension: multilayer hotspots (Fig. 13 workload)",
        ["method", "test accuracy"],
        [
            ("metal-1 features only", f"{single_accuracy:.2%}"),
            ("multilayer features (IV-A)", f"{multi_accuracy:.2%}"),
        ],
    )
    assert multi_accuracy >= 0.85
    assert multi_accuracy >= single_accuracy

    once(detector.predict, test[:4])


def test_dpt_extension(once):
    clips = generate_dpt_set(14, 18, SPEC)
    train = clips[:10] + clips[14:28]
    test = clips[10:14] + clips[28:]
    truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])

    detector = DptDetector(DetectorConfig.ours(), min_same_mask_spacing=100)
    detector.fit(train)
    accuracy = float((detector.predict(test) == truth).mean())

    # Decomposition sanity on the workload itself.
    from repro.multilayer.dpt import decompose

    conflict_counts = {True: 0, False: 0}
    for clip in clips:
        result = decompose(list(clip.rects), 100)
        conflict_counts[clip.label is ClipLabel.HOTSPOT] += len(result.conflicts)

    print_table(
        "Extension: double patterning (Fig. 14 workload)",
        ["metric", "value"],
        [
            ("DPT detector accuracy", f"{accuracy:.2%}"),
            ("decomposition conflicts (hotspot clips)", conflict_counts[True]),
            ("decomposition conflicts (safe clips)", conflict_counts[False]),
        ],
    )
    assert accuracy >= 0.85

    once(detector.predict, test[:4])
