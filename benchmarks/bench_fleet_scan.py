"""repro.fleet claim — distributing a scan buys wall-clock, not bits.

Times the same fleet scan (in-process :class:`FleetCoordinator`, real
``repro fleet-worker`` subprocesses — exactly what ``repro fleet-scan``
supervises) at 1, 2 and 4 workers, then twice more against a shared
remote cache node (cold, then warm).  Every run must report the
bit-identical hotspot set to a single-node thread-backend scan.

Recorded in ``BENCH_fleet_scan.json``:

- ``fleet_wall_s_{1,2,4}w`` and ``fleet_speedup_4w_x`` — wall-clock
  scaling of the worker fleet;
- ``remote_cache_{cold,warm}_hit_rate`` and ``remote_warm_speedup_x``
  — how much of the second scan's work the shared tier absorbed;
- ``fleet_wall_s_2w_traced`` and ``tracing_overhead_pct`` — the same
  2-worker scan with cross-process span shipping on, gated at <=5%
  over the untraced run;
- ``ha_wall_s_2w``, ``ha_wall_s_2w_failover`` and
  ``failover_overhead_pct`` — the 2-worker scan with a warm standby
  attached, quiet and with the primary killed mid-scan (standby
  promotes, workers re-home), gated at <=20% over the quiet run;
- ``cache_rf2_wall_s_{cold,warm}`` and ``rf2_overhead_pct`` — the
  cold cache scan again against a two-node RF=2 tier (every put lands
  on both replicas), gated at <=15% over the unreplicated cold run.

The wall-clock acceptance bar scales with the machine: >=1.7x at 4
workers on >=4 cores, >=1.2x on 2-3 cores, and on a single core the
speedup is recorded but not gated (4 CPU-bound workers cannot beat 1
on one core — the number is still written so multi-core CI can gate
it).  The remote-cache warm rescan bar (>=1.3x) holds everywhere:
cache hits save compute, not cores.

Runs under the bench harness (``pytest benchmarks/bench_fleet_scan.py``)
or standalone (``python benchmarks/bench_fleet_scan.py``).
"""

import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.persist import load_detector, save_detector
from repro.data.benchmarks import generate_benchmark
from repro.fleet import CacheServer, FleetCoordinator, FleetHTTPServer, FleetOptions
from repro.layout.io import save_layout_gds

#: Layout scale for the worker-scaling rows — larger than the table
#: benches so per-shard compute dominates worker-subprocess startup.
LAYOUT_SCALE = 2.0
#: The cache rows pay one HTTP round trip per clip per op, so they run
#: on the standard-size layout to keep the bench wall time sane.
CACHE_LAYOUT_SCALE = 1.0

CORES = os.cpu_count() or 1
#: Wall-clock bar for the 4-worker fleet, by available parallelism.
FLEET_SPEEDUP_BAR = 1.7 if CORES >= 4 else (1.2 if CORES >= 2 else None)
#: Warm remote-cache rescans save compute on any core count.
WARM_SPEEDUP_BAR = 1.3
#: A traced fleet scan must stay within this factor of the untraced
#: wall clock (the ``trace_headers`` / no-op-tracer fast paths are what
#: hold it), plus a small absolute slack so sub-second scheduler noise
#: cannot fail the gate on its own.
TRACING_OVERHEAD_FACTOR = 1.05
TRACING_SLACK_S = 0.5
#: A failover run repeats the in-flight shards and pays the promotion
#: latency; it must stay within this factor of the quiet standby run,
#: plus an absolute slack covering the probe/re-home floor on layouts
#: small enough that it dominates.
FAILOVER_OVERHEAD_FACTOR = 1.2
FAILOVER_SLACK_S = 2.0
#: Doubling every put (RF=2) must stay close to the single-node cache
#: wall: puts are batched per shard flush, so the second replica costs
#: one extra batch RPC per flush, not one RPC per clip.  Absolute
#: slack covers scheduler noise on walls of a few seconds.
RF2_OVERHEAD_FACTOR = 1.15
RF2_SLACK_S = 1.0


def _report_key(report):
    return sorted((c.core.x0, c.core.y0, c.core.x1, c.core.y1) for c in report.reports)


def _spawn_worker(url: str, model: Path, layout: Path, index: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet-worker",
            "--url", url,
            "--model", str(model),
            "--layout", str(layout),
            "--worker-id", f"bench-{index}",
        ],
        stdout=subprocess.DEVNULL,
    )


def _run_fleet(
    detector, layout, model_path, layout_path, workers, cache_urls=(), trace=False
):
    """One fleet scan; returns (wall_s, detection report, status)."""
    options = FleetOptions(cache_urls=list(cache_urls), trace=trace)
    coordinator = FleetCoordinator(detector, layout, options=options)
    started = time.perf_counter()
    with coordinator:
        procs = [
            _spawn_worker(coordinator.url, model_path, layout_path, i)
            for i in range(workers)
        ]
        try:
            assert coordinator.wait(timeout=1200), coordinator.status()
            for proc in procs:
                proc.wait(timeout=30)
            scan = coordinator.result()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
        report = detector.detect(layout, scan=scan)
    if trace:
        assert coordinator.trace_documents(), "traced fleet shipped no spans"
    return round(time.perf_counter() - started, 3), report, coordinator.status()


def _run_ha_fleet(
    detector, layout, model_path, layout_path, workers=2, failover=False
):
    """A fleet scan with a warm standby attached; optionally kill the
    primary mid-scan and finish against the promoted standby."""
    from repro.fleet import StandbyCoordinator
    from repro.fleet.protocol import wait_until

    coordinator = FleetCoordinator(
        detector, layout, options=FleetOptions(lease_ttl_s=2.0)
    )
    started = time.perf_counter()
    coordinator.start()
    standby = StandbyCoordinator(
        detector, layout, coordinator.url, probe_interval_s=0.25
    ).start()
    endpoints = f"{coordinator.url},{standby.url}"
    procs = [
        _spawn_worker(endpoints, model_path, layout_path, i)
        for i in range(workers)
    ]
    try:
        if failover:
            assert wait_until(
                lambda: coordinator.pushes_accepted >= 1, timeout_s=600
            ), coordinator.status()
            coordinator.stop()
            assert wait_until(
                lambda: standby.promoted.is_set(), timeout_s=60
            ), "standby never promoted"
        leader = standby.inner if failover else coordinator
        assert leader.wait(timeout=1200), leader.status()
        for proc in procs:
            proc.wait(timeout=60)
        scan = leader.result()
        status = leader.status()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        standby.stop()
        coordinator.stop()
    report = detector.detect(layout, scan=scan)
    return round(time.perf_counter() - started, 3), report, status


def run_fleet_matrix(detector, layout, cache_layout, workdir: Path):
    model_path = workdir / "model.npz"
    layout_path = workdir / "layout.gds"
    cache_layout_path = workdir / "cache_layout.gds"
    save_detector(detector, model_path, name="bench-fleet")
    save_layout_gds(layout, layout_path)
    save_layout_gds(cache_layout, cache_layout_path)
    # The coordinator must fingerprint-match the workers, which load the
    # persisted model — so the driver side loads the same artifact.
    detector = load_detector(model_path)

    started = time.perf_counter()
    reference = detector.detect(layout)
    single_wall = round(time.perf_counter() - started, 3)
    reference_key = _report_key(reference)
    rows = [
        {"mode": "single-node", "wall_s": single_wall,
         "reports": reference.report_count, "hit_rate": "-"},
    ]

    for workers in (1, 2, 4):
        wall, report, status = _run_fleet(
            detector, layout, model_path, layout_path, workers
        )
        assert _report_key(report) == reference_key, (
            f"{workers}-worker fleet changed the hotspot set"
        )
        assert status["completed"] == status["shards"], status
        rows.append(
            {"mode": f"fleet-{workers}w", "wall_s": wall,
             "reports": report.report_count, "hit_rate": "-"}
        )

    # Tracing-overhead row: the 2-worker scan again, now with workers
    # installing tracers and shipping spans to the coordinator after
    # every push.  Compared against the untraced fleet-2w row below.
    wall, report, _ = _run_fleet(
        detector, layout, model_path, layout_path, workers=2, trace=True
    )
    assert _report_key(report) == reference_key, (
        "traced fleet changed the hotspot set"
    )
    rows.append(
        {"mode": "fleet-2w-traced", "wall_s": wall,
         "reports": report.report_count, "hit_rate": "-"}
    )

    # HA rows: the 2-worker scan with a warm standby tailing the
    # primary (the standing replication cost), then again with the
    # primary killed after its first accepted push — promotion,
    # worker re-homing and shard re-leases all land inside the wall.
    for label, failover in (("ha-2w", False), ("ha-2w-failover", True)):
        wall, report, status = _run_ha_fleet(
            detector, layout, model_path, layout_path,
            workers=2, failover=failover,
        )
        assert _report_key(report) == reference_key, (
            f"{label} changed the hotspot set"
        )
        assert status["completed"] == status["shards"], status
        if failover:
            assert status["epoch"] >= 2, status
        rows.append(
            {"mode": label, "wall_s": wall,
             "reports": report.report_count, "hit_rate": "-"}
        )

    # Shared remote tier: a cold 2-worker scan populates it, the warm
    # rerun reads it back.  Hit rates come from the node itself.
    cache_reference_key = _report_key(detector.detect(cache_layout))
    node = CacheServer()
    with FleetHTTPServer(node) as server:
        for label in ("cache-cold", "cache-warm"):
            before = node.stats()
            wall, report, _ = _run_fleet(
                detector, cache_layout, model_path, cache_layout_path,
                workers=2, cache_urls=[server.url],
            )
            assert _report_key(report) == cache_reference_key, (
                f"{label} fleet changed the hotspot set"
            )
            gets = node.stats()["gets"] - before["gets"]
            hits = node.stats()["hits"] - before["hits"]
            rows.append(
                {"mode": label, "wall_s": wall, "reports": report.report_count,
                 "hit_rate": round(hits / gets, 3) if gets else 0.0}
            )

    # Replicated tier: the same cold/warm pair against two nodes at
    # RF=2 — every put lands on both replicas, every get asks the
    # key's primary first.  Compared against the unreplicated
    # cache-cold row by the <=15% overhead gate in the test.
    nodes = [CacheServer(), CacheServer()]
    with FleetHTTPServer(nodes[0]) as s0, FleetHTTPServer(nodes[1]) as s1:
        for label in ("cache-rf2-cold", "cache-rf2-warm"):
            before = [n.stats() for n in nodes]
            wall, report, _ = _run_fleet(
                detector, cache_layout, model_path, cache_layout_path,
                workers=2, cache_urls=[s0.url, s1.url],
            )
            assert _report_key(report) == cache_reference_key, (
                f"{label} fleet changed the hotspot set"
            )
            gets = sum(
                n.stats()["gets"] - b["gets"] for n, b in zip(nodes, before)
            )
            hits = sum(
                n.stats()["hits"] - b["hits"] for n, b in zip(nodes, before)
            )
            rows.append(
                {"mode": label, "wall_s": wall, "reports": report.report_count,
                 "hit_rate": round(hits / gets, 3) if gets else 0.0}
            )
    return rows


def test_fleet_scan(once):
    from conftest import get_detector, print_table, record_metrics

    detector = get_detector("benchmark1", "ours")
    layout = generate_benchmark("benchmark1", LAYOUT_SCALE).testing.layout
    cache_layout = generate_benchmark(
        "benchmark1", CACHE_LAYOUT_SCALE
    ).testing.layout
    workdir = Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        rows = once(run_fleet_matrix, detector, layout, cache_layout, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    print_table(
        f"Fleet scan wall time (benchmark1 x{LAYOUT_SCALE}, {CORES} cores)",
        ["mode", "wall_s", "reports", "hit_rate"],
        [[r["mode"], r["wall_s"], r["reports"], r["hit_rate"]] for r in rows],
    )

    by_mode = {r["mode"]: r for r in rows}
    fleet_speedup = round(
        by_mode["fleet-1w"]["wall_s"] / max(by_mode["fleet-4w"]["wall_s"], 1e-9), 3
    )
    warm_speedup = round(
        by_mode["cache-cold"]["wall_s"] / max(by_mode["cache-warm"]["wall_s"], 1e-9),
        3,
    )
    untraced_wall = by_mode["fleet-2w"]["wall_s"]
    traced_wall = by_mode["fleet-2w-traced"]["wall_s"]
    tracing_overhead_pct = round(
        (traced_wall / max(untraced_wall, 1e-9) - 1.0) * 100, 1
    )
    ha_wall = by_mode["ha-2w"]["wall_s"]
    failover_wall = by_mode["ha-2w-failover"]["wall_s"]
    failover_overhead_pct = round(
        (failover_wall / max(ha_wall, 1e-9) - 1.0) * 100, 1
    )
    rf1_wall = by_mode["cache-cold"]["wall_s"]
    rf2_wall = by_mode["cache-rf2-cold"]["wall_s"]
    rf2_overhead_pct = round((rf2_wall / max(rf1_wall, 1e-9) - 1.0) * 100, 1)
    record_metrics(
        __file__,
        cores=CORES,
        single_node_wall_s=by_mode["single-node"]["wall_s"],
        fleet_wall_s_1w=by_mode["fleet-1w"]["wall_s"],
        fleet_wall_s_2w=by_mode["fleet-2w"]["wall_s"],
        fleet_wall_s_4w=by_mode["fleet-4w"]["wall_s"],
        fleet_speedup_4w_x=fleet_speedup,
        remote_cache_cold_hit_rate=by_mode["cache-cold"]["hit_rate"],
        remote_cache_warm_hit_rate=by_mode["cache-warm"]["hit_rate"],
        remote_warm_speedup_x=warm_speedup,
        fleet_wall_s_2w_traced=traced_wall,
        tracing_overhead_pct=tracing_overhead_pct,
        ha_wall_s_2w=ha_wall,
        ha_wall_s_2w_failover=failover_wall,
        failover_overhead_pct=failover_overhead_pct,
        cache_rf2_wall_s_cold=rf2_wall,
        cache_rf2_wall_s_warm=by_mode["cache-rf2-warm"]["wall_s"],
        cache_rf2_warm_hit_rate=by_mode["cache-rf2-warm"]["hit_rate"],
        rf2_overhead_pct=rf2_overhead_pct,
        reports=by_mode["single-node"]["reports"],
    )

    assert traced_wall <= untraced_wall * TRACING_OVERHEAD_FACTOR + TRACING_SLACK_S, (
        f"traced fleet scan {traced_wall}s vs untraced {untraced_wall}s: "
        f"tracing overhead {tracing_overhead_pct}% above the "
        f"{round((TRACING_OVERHEAD_FACTOR - 1) * 100)}% bar"
    )

    assert failover_wall <= ha_wall * FAILOVER_OVERHEAD_FACTOR + FAILOVER_SLACK_S, (
        f"failover scan {failover_wall}s vs quiet standby run {ha_wall}s: "
        f"failover overhead {failover_overhead_pct}% above the "
        f"{round((FAILOVER_OVERHEAD_FACTOR - 1) * 100)}% bar"
    )

    assert rf2_wall <= rf1_wall * RF2_OVERHEAD_FACTOR + RF2_SLACK_S, (
        f"RF=2 cold cache scan {rf2_wall}s vs unreplicated {rf1_wall}s: "
        f"replication overhead {rf2_overhead_pct}% above the "
        f"{round((RF2_OVERHEAD_FACTOR - 1) * 100)}% bar"
    )
    assert (
        by_mode["cache-rf2-warm"]["hit_rate"]
        > by_mode["cache-rf2-cold"]["hit_rate"]
    )

    assert by_mode["cache-warm"]["hit_rate"] > by_mode["cache-cold"]["hit_rate"]
    assert warm_speedup >= WARM_SPEEDUP_BAR, (
        f"warm remote-cache rescan {warm_speedup}x below the "
        f"{WARM_SPEEDUP_BAR}x bar"
    )
    if FLEET_SPEEDUP_BAR is None:
        print(
            f"fleet speedup {fleet_speedup}x recorded but not gated "
            f"({CORES} core: 4 CPU-bound workers cannot beat 1)"
        )
    else:
        assert fleet_speedup >= FLEET_SPEEDUP_BAR, (
            f"4-worker fleet {fleet_speedup}x below the "
            f"{FLEET_SPEEDUP_BAR}x bar on {CORES} cores"
        )


if __name__ == "__main__":
    import json

    sys.path.insert(0, "benchmarks")
    from conftest import get_detector, print_table

    detector = get_detector("benchmark1", "ours")
    layout = generate_benchmark("benchmark1", LAYOUT_SCALE).testing.layout
    cache_layout = generate_benchmark(
        "benchmark1", CACHE_LAYOUT_SCALE
    ).testing.layout
    workdir = Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        rows = run_fleet_matrix(detector, layout, cache_layout, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print_table(
        f"Fleet scan wall time (benchmark1 x{LAYOUT_SCALE}, {CORES} cores)",
        ["mode", "wall_s", "reports", "hit_rate"],
        [[r["mode"], r["wall_s"], r["reports"], r["hit_rate"]] for r in rows],
    )
    print(json.dumps(rows, indent=2))
