"""Fig. 15 — trade-off between accuracy (hit rate) and false alarm.

The paper pools the MX training sets, trains on a sample, pools the
testing layouts, and sweeps the operating point; the extra count stays
low and stable through the mid hit-rates and grows (roughly linearly)
only once the hit rate pushes past ~90 %.

Here the decision threshold is swept over a trained 'ours' detector.
Candidate margins are computed once; each threshold re-scores the flag
set (removal is applied at each point so the curve matches the deployed
pipeline).
"""


from repro.core.extraction import extract_for_detector
from repro.core.metrics import score_reports
from repro.core.removal import remove_redundant_clips

from conftest import get_benchmark, get_detector, print_table

#: Sweep from permissive to strict.
THRESHOLDS = (-0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0)


def sweep(name: str):
    bench = get_benchmark(name)
    detector = get_detector(name, "removal")  # no feedback: pure threshold sweep
    extraction = extract_for_detector(bench.testing.layout, detector.config)
    margins = detector.margins(extraction.clips)
    truth = bench.testing.hotspot_cores()

    points = []
    for threshold in THRESHOLDS:
        flagged = [
            clip for clip, margin in zip(extraction.clips, margins) if margin >= threshold
        ]
        reports = remove_redundant_clips(
            flagged,
            detector.config.spec,
            detector.config.removal,
            lambda core: bench.testing.layout.cut_clip_at_core(
                detector.config.spec, core
            ),
        )
        score = score_reports(reports, truth, bench.testing.area_um2)
        points.append((threshold, score))
    return points


def test_fig15_tradeoff(once):
    points = sweep("benchmark1")
    rows = [
        (
            f"{threshold:+.2f}",
            score.hits,
            score.extras,
            f"{score.accuracy:.2%}",
        )
        for threshold, score in points
    ]
    print_table(
        "Fig. 15: hit rate vs extra count (threshold sweep, benchmark1)",
        ["threshold", "#hit", "#extra", "hit rate"],
        rows,
    )

    hits = [score.hits for _, score in points]
    extras = [score.extras for _, score in points]
    # Monotone shape: stricter thresholds cannot add hits or extras.
    assert hits == sorted(hits, reverse=True)
    assert extras == sorted(extras, reverse=True)
    # Fig. 15 shape: the extra count at the strictest point with >= 80 %
    # hit rate is a small fraction of the most permissive point's extras.
    permissive_extras = extras[0]
    mid_points = [
        score for _, score in points if score.accuracy >= 0.8
    ]
    if mid_points and permissive_extras > 0:
        assert min(p.extras for p in mid_points) <= permissive_extras

    detector = get_detector("benchmark1", "removal")
    bench = get_benchmark("benchmark1")
    extraction = extract_for_detector(bench.testing.layout, detector.config)
    once(detector.margins, extraction.clips[:200])
