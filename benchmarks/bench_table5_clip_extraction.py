"""Table V — clip extraction vs. window scanning.

Compares the number of clips the density-driven extraction produces
against the 50 %-overlap sliding-window count on every testing layout.
The shape under test is Table V's: the paper's method emits materially
fewer clips on every benchmark (1.6x - 7x fewer at contest scale).
"""

from repro.baselines.window_scan import WindowScanConfig, count_window_clips
from repro.core.extraction import extract_candidate_clips
from repro.data.benchmarks import BENCHMARKS, ICCAD_SPEC

from conftest import get_benchmark, print_table


def test_table5_clip_extraction(once):
    rows = []
    ratios = []
    for config in BENCHMARKS:
        bench = get_benchmark(config.name)
        window = bench.testing.window
        window_count = count_window_clips(
            window, ICCAD_SPEC.core_side, WindowScanConfig(overlap=0.5)
        )
        extraction = extract_candidate_clips(bench.testing.layout, ICCAD_SPEC)
        ratio = window_count / max(1, extraction.candidate_count)
        ratios.append(ratio)
        rows.append(
            (
                f"Array_{config.name}",
                f"{window.width/1000:.3f}x{window.height/1000:.3f}um",
                window_count,
                extraction.candidate_count,
                f"{ratio:.1f}x",
            )
        )
    print_table(
        "Table V: clip counts — window-based (50% overlap) vs ours",
        ["testing layout", "area", "#clip window", "#clip ours", "reduction"],
        rows,
    )

    # Table V shape: fewer clips on every layout.
    assert all(ratio > 1.0 for ratio in ratios), ratios

    bench = get_benchmark("benchmark1")
    once(extract_candidate_clips, bench.testing.layout, ICCAD_SPEC)
