"""Serving throughput — the micro-batched HTTP service under load.

Drives a real :class:`HotspotServer` (ephemeral port, in-process) with
concurrent :class:`ServeClient` callers at request batch sizes 1/16/64
and reports requests/s, clips/s, mean server-side micro-batch size and
client-observed p50/p99 latency.  The shape under test: larger request
batches amortise HTTP + queue overhead, so clips/s must grow with batch
size while the batcher keeps per-request latency bounded.

Runs under the bench harness (``pytest benchmarks/bench_serving_throughput.py``)
or standalone (``python benchmarks/bench_serving_throughput.py``), where
it emits one JSON document per row plus a summary table.
"""

import itertools
import json
import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.core.persist import save_detector
from repro.serve import (
    BatchingConfig,
    HotspotServer,
    ServeClient,
    ServeService,
    ServerConfig,
)

#: (request batch size, number of requests) per load phase.
PHASES = [(1, 120), (16, 60), (64, 30)]
CONCURRENCY = 8


def _make_batches(clips, batch_size, count):
    source = itertools.cycle(clips)
    return [[next(source) for _ in range(batch_size)] for _ in range(count)]


def _batch_stats(metrics, before):
    snapshot = metrics.snapshot()
    hist = snapshot.get("repro_serve_batch_size_clips", {"count": 0, "sum": 0.0})
    count = hist["count"] - before["count"]
    total = hist["sum"] - before["sum"]
    return hist, (total / count if count else 0.0)


def run_throughput(detector, clips, phases=PHASES, concurrency=CONCURRENCY):
    """Serve ``detector`` and load it; returns one result row per phase."""
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "model.npz"
        save_detector(detector, model_path, name="bench")
        service = ServeService(
            batching=BatchingConfig(
                max_batch_clips=64, max_delay_s=0.002, max_queue_clips=4096, workers=2
            )
        )
        service.load_model(model_path)
        with HotspotServer(service, ServerConfig(port=0)) as server:
            for batch_size, request_count in phases:
                batches = _make_batches(clips, batch_size, request_count)
                before, _ = _batch_stats(service.metrics, {"count": 0, "sum": 0.0})
                latencies = []

                def one_request(batch):
                    client = ServeClient(server.url, timeout=120.0)
                    started = time.perf_counter()
                    result = client.predict(batch)
                    latencies.append(time.perf_counter() - started)
                    client.close()
                    return result.hotspot_count

                wall_started = time.perf_counter()
                with ThreadPoolExecutor(concurrency) as pool:
                    flagged = sum(pool.map(one_request, batches))
                wall = time.perf_counter() - wall_started
                _, mean_batch = _batch_stats(service.metrics, before)
                ordered = sorted(latencies)
                rows.append(
                    {
                        "batch_size": batch_size,
                        "requests": request_count,
                        "clips": batch_size * request_count,
                        "flagged": flagged,
                        "wall_seconds": wall,
                        "req_per_s": request_count / wall,
                        "clips_per_s": batch_size * request_count / wall,
                        "mean_server_batch": mean_batch,
                        "p50_ms": 1000 * statistics.median(ordered),
                        "p99_ms": 1000
                        * ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
                    }
                )
    return rows


def _report(rows):
    from conftest import print_table

    print_table(
        "Serving throughput — micro-batched HTTP inference",
        [
            "req batch",
            "requests",
            "req/s",
            "clips/s",
            "mean srv batch",
            "p50 ms",
            "p99 ms",
        ],
        [
            (
                row["batch_size"],
                row["requests"],
                f"{row['req_per_s']:.1f}",
                f"{row['clips_per_s']:.1f}",
                f"{row['mean_server_batch']:.1f}",
                f"{row['p50_ms']:.1f}",
                f"{row['p99_ms']:.1f}",
            )
            for row in rows
        ],
    )
    print(json.dumps({"bench": "serving_throughput", "rows": rows}))


def test_serving_throughput(once):
    from conftest import get_benchmark, get_detector, record_metrics

    bench = get_benchmark("benchmark5")
    detector = get_detector("benchmark5", "ours")
    clips = list(bench.training)[:64]
    rows = once(run_throughput, detector, clips)
    _report(rows)

    # Larger request batches must move more clips per second end to end.
    assert rows[-1]["clips_per_s"] > rows[0]["clips_per_s"]
    # Every phase saw its work and nothing was dropped.
    assert all(row["requests"] > 0 and row["wall_seconds"] > 0 for row in rows)
    best = max(rows, key=lambda row: row["clips_per_s"])
    record_metrics(
        __file__,
        peak_clips_per_s=round(best["clips_per_s"], 1),
        peak_req_per_s=round(best["req_per_s"], 1),
        peak_batch_size=best["batch_size"],
        p99_ms_at_peak=round(best["p99_ms"], 1),
    )


def test_serving_margin_eval_fast_speedup(once):
    """The served model's margin stage must hit the fast-mode gate too.

    Same measurement as ``bench_scan_parallel.run_margin_eval_modes``
    but on the serving bench's model (benchmark5): the registry warms
    the fast states at load time, so this is the steady-state cost a
    ``--compute fast`` server pays per batch.
    """
    from bench_scan_parallel import (
        MARGIN_EVAL_MIN_SPEEDUP,
        run_margin_eval_modes,
    )
    from conftest import get_benchmark, get_detector, print_table, record_metrics

    bench = get_benchmark("benchmark5")
    detector = get_detector("benchmark5", "ours")
    row = once(run_margin_eval_modes, detector, bench.testing.layout)

    print_table(
        "Margin evaluation — exact per-row vs fast blocked GEMM (benchmark5)",
        ["kernels", "rows", "exact_s", "fast_s", "speedup_x", "drift_ulps"],
        [[row["kernels"], row["rows"], row["exact_s"], row["fast_s"],
          row["speedup_x"], row["drift_ulps"]]],
    )
    record_metrics(
        __file__,
        margin_eval_rows=row["rows"],
        margin_eval_exact_s=row["exact_s"],
        margin_eval_fast_s=row["fast_s"],
        margin_eval_speedup_x=row["speedup_x"],
        margin_eval_drift_ulps=row["drift_ulps"],
        margin_eval_drift_bound_ulps=row["drift_bound_ulps"],
    )
    assert row["speedup_x"] >= MARGIN_EVAL_MIN_SPEEDUP, (
        f"fast margin evaluation only {row['speedup_x']}x faster than exact "
        f"(gate: {MARGIN_EVAL_MIN_SPEEDUP}x over {row['rows']} rows)"
    )
    assert row["drift_ulps"] <= row["drift_bound_ulps"]


if __name__ == "__main__":
    from repro.core.config import DetectorConfig
    from repro.core.detector import HotspotDetector
    from repro.data.benchmarks import generate_benchmark

    bench = generate_benchmark("benchmark5", scale=1.0)
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(bench.training)
    _report(run_throughput(detector, list(bench.training)[:64]))
