"""Section V claim — rapid training convergence.

Two views of the iterative C/gamma self-training (Section III-D2):

1. per-kernel round counts on a real benchmark: the paper's stop
   criterion (90 % self-accuracy) is reached within a couple of doubling
   rounds for almost every kernel;
2. a controlled hard problem (XOR-style labels) where every doubling
   round measurably raises training accuracy — the convergence curve.
"""

import numpy as np

from repro.svm.grid_search import IterativeConfig, train_iterative

from conftest import get_benchmark, get_detector, print_table


def test_kernel_round_counts(once):
    detector = get_detector("benchmark3", "ours")
    model = detector.model_
    rows = []
    for kernel in model.kernels:
        final = kernel.history[-1]
        rows.append(
            (
                kernel.cluster_index,
                kernel.hotspot_count,
                len(kernel.history),
                f"C={final.c_value:g}",
                f"g={final.gamma:g}",
                f"{final.train_accuracy:.2%}",
            )
        )
    print_table(
        "Convergence: per-kernel self-training rounds (benchmark3)",
        ["kernel", "#hs", "rounds", "final C", "final gamma", "train acc"],
        rows,
    )
    rounds = [len(k.history) for k in model.kernels]
    # Rapid convergence: the median kernel stops within 2 rounds and every
    # kernel reaches the 90% stop criterion within the round budget.
    assert sorted(rounds)[len(rounds) // 2] <= 2
    assert all(k.history[-1].train_accuracy >= 0.85 for k in model.kernels)

    bench = get_benchmark("benchmark3")
    hotspots = bench.training.hotspots()[:8]
    once(detector.margins, hotspots)


def test_doubling_curve(once):
    rng = np.random.default_rng(11)
    x = rng.uniform(-1, 1, (300, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1, -1)
    config = IterativeConfig(
        initial_c=0.5, initial_gamma=0.005, target_accuracy=0.98, max_rounds=10
    )
    result = train_iterative(x, y, config)
    rows = [
        (r.round_index, f"{r.c_value:g}", f"{r.gamma:g}", f"{r.train_accuracy:.2%}")
        for r in result.history
    ]
    print_table(
        "Convergence: C/gamma doubling on a hard separable problem",
        ["round", "C", "gamma", "train acc"],
        rows,
    )
    accuracies = [r.train_accuracy for r in result.history]
    assert accuracies[-1] >= accuracies[0]
    assert max(accuracies) >= 0.9

    once(train_iterative, x, y, IterativeConfig(max_rounds=2))
