"""Table II — comparison with the contest winners.

The 2012 CAD contest winners are closed binaries, so the comparison runs
against behavioural stand-ins built on the same substrate (DESIGN.md):

- ``1st_place(PM)``  — the fuzzy pattern matcher (the actual first-place
  entry was the authors' pattern-matching engine);
- ``single_SVM``     — a plain one-kernel SVM (the classic ML entry);
- ``ours`` / ``ours_med`` / ``ours_low`` — the framework's Table II
  operating points;
- ``ours_nopara``    — the framework without multithreaded computing.

The shape under test (paper Table II): ours matches or beats the pattern
matcher on accuracy with far fewer extras; ours_med / ours_low trade hits
for hit/extra ratio; nopara is slower than parallel with identical
results.
"""

import time

from repro.baselines.pattern_match import PatternMatcher
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector

from conftest import get_benchmark, get_detector, print_table, record_metrics

BENCH_NAMES = ("benchmark1", "benchmark4", "benchmark5")


def _fmt_ratio(score):
    ratio = score.hit_extra_ratio
    return "inf" if ratio == float("inf") else f"{ratio:.3f}"


def run_comparison():
    rows = []
    shape_checks = []
    for name in BENCH_NAMES:
        bench = get_benchmark(name)

        matcher = PatternMatcher()
        started = time.perf_counter()
        matcher.fit(bench.training)
        pm_report = matcher.score(bench.testing)
        pm_seconds = time.perf_counter() - started
        rows.append(
            (
                name,
                "1st_place(PM)",
                pm_report.score.hits,
                pm_report.score.extras,
                f"{pm_report.score.accuracy:.2%}",
                _fmt_ratio(pm_report.score),
                f"{pm_seconds:.1f}s",
            )
        )

        for variant in ("basic", "ours", "ours_med", "ours_low"):
            label = {"basic": "single_SVM"}.get(variant, variant)
            started = time.perf_counter()
            detector = get_detector(name, variant)
            result = detector.score(bench.testing)
            seconds = time.perf_counter() - started
            rows.append(
                (
                    name,
                    label,
                    result.score.hits,
                    result.score.extras,
                    f"{result.score.accuracy:.2%}",
                    _fmt_ratio(result.score),
                    f"{seconds:.1f}s",
                )
            )
            if variant == "ours":
                shape_checks.append((name, pm_report.score, result.score))

        # ours without multithreading: identical results, measured serially
        serial = HotspotDetector(DetectorConfig(parallel=False))
        started = time.perf_counter()
        serial.fit(bench.training)
        serial_result = serial.score(bench.testing)
        seconds = time.perf_counter() - started
        rows.append(
            (
                name,
                "ours_nopara",
                serial_result.score.hits,
                serial_result.score.extras,
                f"{serial_result.score.accuracy:.2%}",
                _fmt_ratio(serial_result.score),
                f"{seconds:.1f}s (fit+eval)",
            )
        )
    return rows, shape_checks


def test_table2_comparison(once):
    rows, shape_checks = run_comparison()
    print_table(
        "Table II: comparison with contest-winner stand-ins",
        ["benchmark", "method", "#hit", "#extra", "accuracy", "hit/extra", "runtime"],
        rows,
    )
    # Shape assertions, aggregated over the benchmark set (individual
    # benchmarks can favour PM — e.g. the tiny-training benchmark5, where
    # memorisation shines — but the overall objective must favour ours,
    # as the paper's Table II summary claims).
    def mean(values):
        values = list(values)
        return sum(values) / len(values)

    pm_ratio = mean(
        min(score.hit_extra_ratio, 100.0) for _, score, _ in shape_checks
    )
    ours_ratio = mean(
        min(score.hit_extra_ratio, 100.0) for _, _, score in shape_checks
    )
    assert ours_ratio >= pm_ratio, (ours_ratio, pm_ratio)
    close_or_better = sum(
        1
        for _, pm_score, ours_score in shape_checks
        if ours_score.accuracy >= pm_score.accuracy - 0.10
    )
    assert close_or_better * 2 >= len(shape_checks), shape_checks
    record_metrics(
        __file__,
        pm_hit_extra_ratio=round(pm_ratio, 3),
        ours_hit_extra_ratio=round(ours_ratio, 3),
        ours_mean_accuracy=round(
            mean(score.accuracy for _, _, score in shape_checks), 4
        ),
        benchmarks=len(shape_checks),
    )

    bench = get_benchmark("benchmark5")
    detector = get_detector("benchmark5", "ours")
    once(detector.score, bench.testing)
