"""Table III — detailed feature ablation.

Reproduces the Basic / +Topology / +Removal / Ours progression with the
Section V parameters (C0 = 1000, gamma0 = 0.01, K = 10, 90 % stop,
shift = lc/10, merge overlap 20 %, reframe ls = 1150 nm).

Shape under test:
- topological classification + population balancing lifts accuracy over
  the single huge kernel and slashes extras;
- redundant clip removal cuts reports without losing hits;
- the feedback kernel trims further extras at equal accuracy.
"""

from conftest import get_benchmark, get_detector, print_table

BENCH_NAMES = ("benchmark1", "benchmark3", "benchmark4")
VARIANTS = (("basic", "Basic"), ("topology", "+Topology"), ("removal", "+Removal"), ("ours", "Ours"))


def run_ablation():
    table = {}
    for name in BENCH_NAMES:
        bench = get_benchmark(name)
        table[name] = {}
        for variant, _label in VARIANTS:
            detector = get_detector(name, variant)
            result = detector.score(bench.testing)
            table[name][variant] = result
    return table


def test_table3_ablation(once):
    table = run_ablation()
    rows = []
    for name in BENCH_NAMES:
        bench = get_benchmark(name)
        hs_ratio = len(bench.training.hotspots()) / max(
            1, len(bench.training.non_hotspots())
        )
        for variant, label in VARIANTS:
            result = table[name][variant]
            rows.append(
                (
                    name,
                    label,
                    f"{hs_ratio:.2f}",
                    result.score.hits,
                    result.score.extras,
                    f"{result.score.accuracy:.2%}",
                    result.report_count,
                )
            )
    print_table(
        "Table III: feature ablation (Basic -> +Topology -> +Removal -> Ours)",
        ["benchmark", "method", "#hs/#nhs", "#hit", "#extra", "accuracy", "#reports"],
        rows,
    )

    for name in BENCH_NAMES:
        basic = table[name]["basic"].score
        topo = table[name]["topology"].score
        removal = table[name]["removal"].score
        ours = table[name]["ours"].score
        # Topology must win the combined objective (hit/extra at >= accuracy
        # within tolerance), as in every Table III row.
        assert topo.hit_extra_ratio >= basic.hit_extra_ratio, name
        # Removal never sacrifices accuracy and never adds reports.
        assert removal.hits >= topo.hits - 1, name
        assert table[name]["removal"].report_count <= table[name]["topology"].report_count, name
        # The full framework's extras are never worse than +Removal's.
        assert ours.extras <= removal.extras, name
        assert ours.hits >= removal.hits - 1, name

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    once(detector.score, bench.testing)
