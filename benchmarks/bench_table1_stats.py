"""Table I — benchmark statistics.

Regenerates the six benchmark pairs and prints the Table I row for each:
training hotspot / nonhotspot counts (highly imbalanced, as in the
contest archives), testing hotspot count, layout area and process node.
The timed kernel is one full benchmark-pair generation.
"""

from repro.data.benchmarks import BENCHMARKS, generate_benchmark

from conftest import BENCH_SCALES, get_benchmark, print_table


def test_table1_statistics(once):
    rows = []
    for config in BENCHMARKS:
        bench = get_benchmark(config.name)
        stats = bench.stats()
        rows.append(
            (
                f"MX_{stats['name']}_clip",
                stats["train_hs"],
                stats["train_nhs"],
                f"Array_{stats['name']}",
                stats["test_hs"],
                stats["area_um2"],
                stats["process"],
            )
        )
    print_table(
        "Table I: benchmark statistics (scaled reproduction)",
        ["training", "#hs", "#nhs", "testing", "#hs", "area_um2", "process"],
        rows,
    )

    # Imbalance sanity: every training set is nonhotspot-heavy.
    for _, hs, nhs, *_ in rows:
        assert nhs > hs

    once(generate_benchmark, "benchmark5", BENCH_SCALES["benchmark5"])
