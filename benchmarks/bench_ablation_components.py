"""Design-choice ablations beyond Table III (DESIGN.md section 5).

Isolates two balancing mechanisms the paper folds into Section III-D3:

- **data shifting** (hotspot upsampling): turning it off removes the
  anchoring fuzziness, which costs hits on misaligned candidates;
- **centroid downsampling** of nonhotspots: turning it off floods each
  kernel with redundant negatives, which slows training without an
  accuracy payoff (the paper's training-time argument).
"""

import time
from dataclasses import replace

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.topology.cluster import ClassifierConfig

from conftest import get_benchmark, print_table


def test_shifting_ablation(once):
    bench = get_benchmark("benchmark1")
    rows = []
    results = {}
    for label, amount in (("shift=off", 0), ("shift=lc/10", 120), ("shift=lc/5", 240)):
        config = replace(DetectorConfig.ours(), shift_amount=amount)
        detector = HotspotDetector(config)
        report = detector.fit(bench.training)
        result = detector.score(bench.testing)
        results[label] = result
        rows.append(
            (
                label,
                report.upsampled_hotspots,
                result.score.hits,
                result.score.extras,
                f"{result.score.accuracy:.2%}",
            )
        )
    print_table(
        "Ablation: data shifting (hotspot upsampling)",
        ["variant", "#hs after upsample", "#hit", "#extra", "accuracy"],
        rows,
    )
    # Shifting adds anchoring fuzziness: the paper's lc/10 setting should
    # not lose hits relative to no shifting.
    assert results["shift=lc/10"].score.hits >= results["shift=off"].score.hits

    config = replace(DetectorConfig.ours(), shift_amount=120)
    detector = HotspotDetector(config)
    once(detector.fit, bench.training)


def test_downsampling_ablation(once):
    bench = get_benchmark("benchmark1")
    rows = []
    # Downsampling on (paper) vs effectively off (huge radius -> every
    # nonhotspot is its own cluster centroid).
    variants = (
        ("downsample=on", DetectorConfig.ours()),
        (
            "downsample=off",
            replace(
                DetectorConfig.ours(),
                classifier=ClassifierConfig(radius_threshold=1e-9, expected_cluster_count=10_000),
            ),
        ),
    )
    timings = {}
    for label, config in variants:
        detector = HotspotDetector(config)
        started = time.perf_counter()
        report = detector.fit(bench.training)
        train_seconds = time.perf_counter() - started
        result = detector.score(bench.testing)
        timings[label] = train_seconds
        rows.append(
            (
                label,
                report.nonhotspot_centroids,
                f"{train_seconds:.2f}s",
                result.score.hits,
                result.score.extras,
                f"{result.score.accuracy:.2%}",
            )
        )
    print_table(
        "Ablation: nonhotspot centroid downsampling",
        ["variant", "#nhs centroids", "train time", "#hit", "#extra", "accuracy"],
        rows,
    )
    assert rows[0][1] <= rows[1][1]

    detector = HotspotDetector(DetectorConfig.ours())
    once(detector.fit, bench.training)
