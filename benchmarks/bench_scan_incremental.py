"""repro.cache claim — warm and incremental rescans beat cold scans.

Times four passes of the same process-backend sharded scan of
benchmark1 through :meth:`HotspotDetector.detect`:

- **cold**: empty cache, fresh journal — the price of the first scan
  (plus the one-time cost of writing every cache blob);
- **warm**: same layout again with the disk cache populated but no
  journal reuse — every shard re-runs, every margin row hits;
- **incremental**: same layout again with ``incremental=True`` — every
  shard's influence-region hash matches, the pool is skipped entirely;
- **incremental-edit**: one rectangle added — only the touched shards
  re-evaluate.

The acceptance bar: warm or incremental rescans at least 3x faster than
cold.  Every pass must report the identical hotspot set (and the edit
pass the identical set to a fresh scan of the edited layout).

Runs under the bench harness (``pytest benchmarks/bench_scan_incremental.py``)
or standalone (``python benchmarks/bench_scan_incremental.py``).
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.cache import HotspotCache
from repro.geometry.rect import Rect
from repro.layout.layout import Layout
from repro.work import ScanOptions

WORKERS = 2


def _report_key(report):
    return sorted((c.core.x0, c.core.y0, c.core.x1, c.core.y1) for c in report.reports)


def _edited_copy(layout, layer=1, extra=None):
    out = Layout()
    for rect in layout.layer(layer).rects:
        out.add_rect(layer, rect)
    if extra is not None:
        out.add_rect(layer, extra)
    return out


def run_incremental_matrix(detector, layout):
    """One row per scan mode; all modes report-identical."""
    rows = []
    workdir = Path(tempfile.mkdtemp(prefix="bench-incremental-"))
    try:
        cache_dir = workdir / "cache"
        options = ScanOptions(
            workers=WORKERS,
            journal_dir=workdir / "journal",
            incremental=True,
            cache_dir=cache_dir,
        )
        detector.attach_cache(HotspotCache(directory=cache_dir))

        def timed(label, target, opts):
            started = time.perf_counter()
            report = detector.detect(target, work=opts)
            rows.append(
                {
                    "mode": label,
                    "wall_s": round(time.perf_counter() - started, 3),
                    "reports": report.report_count,
                    "shards_reused": report.shards_reused,
                    "shards_total": report.shards_total,
                }
            )
            return report

        cold = timed("cold", layout, options)
        reference = _report_key(cold)

        # Warm cache, no journal reuse: shards re-run but margins hit.
        warm = timed(
            "warm",
            layout,
            ScanOptions(workers=WORKERS, cache_dir=cache_dir),
        )
        assert _report_key(warm) == reference, "warm cache changed reports"

        incremental = timed("incremental", _edited_copy(layout), options)
        assert _report_key(incremental) == reference, "incremental changed reports"
        assert incremental.shards_reused == incremental.shards_total

        box = layout.bbox(1)
        edit = Rect(box.x0 + 2000, box.y0 + 2000, box.x0 + 2400, box.y0 + 2600)
        edited = _edited_copy(layout, extra=edit)
        edit_report = timed("incremental-edit", edited, options)
        assert 0 < edit_report.shards_reused < edit_report.shards_total
        fresh = detector.detect(edited)
        assert _report_key(edit_report) == _report_key(fresh), (
            "incremental edit diverged from a fresh scan"
        )
    finally:
        detector.attach_cache(None)
        shutil.rmtree(workdir, ignore_errors=True)
    return rows


def test_scan_incremental(once):
    from conftest import get_benchmark, get_detector, print_table, record_metrics

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = once(run_incremental_matrix, detector, bench.testing.layout)

    print_table(
        "Rescan wall time by cache/journal mode (benchmark1)",
        ["mode", "wall_s", "reports", "shards_reused", "shards_total"],
        [
            [r["mode"], r["wall_s"], r["reports"], r["shards_reused"], r["shards_total"]]
            for r in rows
        ],
    )

    by_mode = {r["mode"]: r for r in rows}
    cold = by_mode["cold"]["wall_s"]
    best_rescan = min(by_mode["warm"]["wall_s"], by_mode["incremental"]["wall_s"])
    speedup = round(cold / max(best_rescan, 1e-9), 3)
    record_metrics(
        __file__,
        cold_wall_s=cold,
        warm_wall_s=by_mode["warm"]["wall_s"],
        incremental_wall_s=by_mode["incremental"]["wall_s"],
        incremental_edit_wall_s=by_mode["incremental-edit"]["wall_s"],
        rescan_speedup_x=speedup,
        reports=by_mode["cold"]["reports"],
    )
    assert all(r["reports"] == rows[0]["reports"] for r in rows)
    assert speedup >= 3.0, f"rescan speedup {speedup}x below the 3x bar"


if __name__ == "__main__":
    import json
    import sys

    sys.path.insert(0, "benchmarks")
    from conftest import get_benchmark, get_detector, print_table

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = run_incremental_matrix(detector, bench.testing.layout)
    print_table(
        "Rescan wall time by cache/journal mode (benchmark1)",
        ["mode", "wall_s", "reports", "shards_reused", "shards_total"],
        [
            [r["mode"], r["wall_s"], r["reports"], r["shards_reused"], r["shards_total"]]
            for r in rows
        ],
    )
    print(json.dumps(rows, indent=2))
