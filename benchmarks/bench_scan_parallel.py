"""Scan parallelism — thread pool vs the supervised process pool.

Times a full-layout scan of benchmark1 on the three execution paths of
:meth:`HotspotDetector.detect`: serial, the in-process
``ThreadPoolExecutor`` margin split, and the crash-isolated
:class:`repro.work.SupervisedPool` sharded scan, across worker counts.
The shape under test: the process backend pays a fixed supervision tax
(fork + per-worker model init + shard journaling), so it must stay
within a small factor of the thread path while buying crash isolation
— and every path must report the identical hotspot set.

Runs under the bench harness (``pytest benchmarks/bench_scan_parallel.py``)
or standalone (``python benchmarks/bench_scan_parallel.py``).
"""

import time
from dataclasses import replace

from repro.core.detector import HotspotDetector
from repro.work import ScanOptions

WORKER_COUNTS = [1, 2, 4]


def _clone_with_config(detector, **overrides):
    """The same trained model behind a different execution config."""
    return HotspotDetector(
        config=replace(detector.config, **overrides),
        model_=detector.model_,
        feedback_=detector.feedback_,
    )


def _report_key(report):
    return sorted((c.core.x0, c.core.y0, c.core.x1, c.core.y1) for c in report.reports)


def run_scan_matrix(detector, layout, worker_counts=WORKER_COUNTS):
    """One result row per (backend, workers) cell; all report-identical."""
    rows = []
    serial = _clone_with_config(detector, parallel=False)
    started = time.perf_counter()
    baseline = serial.detect(layout)
    rows.append(
        {
            "backend": "serial",
            "workers": 1,
            "wall_s": round(time.perf_counter() - started, 3),
            "reports": baseline.report_count,
            "restarts": 0,
        }
    )
    reference = _report_key(baseline)

    for workers in worker_counts:
        threaded = _clone_with_config(
            detector, parallel=True, worker_count=workers
        )
        started = time.perf_counter()
        report = threaded.detect(layout)
        assert _report_key(report) == reference, "thread backend changed reports"
        rows.append(
            {
                "backend": "thread",
                "workers": workers,
                "wall_s": round(time.perf_counter() - started, 3),
                "reports": report.report_count,
                "restarts": 0,
            }
        )

    for workers in worker_counts:
        started = time.perf_counter()
        report = detector.detect(
            layout, work=ScanOptions(workers=workers, journal_dir=None)
        )
        assert _report_key(report) == reference, "process backend changed reports"
        rows.append(
            {
                "backend": "process",
                "workers": workers,
                "wall_s": round(time.perf_counter() - started, 3),
                "reports": report.report_count,
                "restarts": report.worker_restarts,
            }
        )
    return rows


def test_scan_parallel(once):
    from conftest import get_benchmark, get_detector, print_table, record_metrics

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = once(run_scan_matrix, detector, bench.testing.layout)

    print_table(
        "Scan wall time by execution backend (benchmark1)",
        ["backend", "workers", "wall_s", "reports", "restarts"],
        [[r["backend"], r["workers"], r["wall_s"], r["reports"], r["restarts"]] for r in rows],
    )

    serial_wall = rows[0]["wall_s"]
    best_thread = min(r["wall_s"] for r in rows if r["backend"] == "thread")
    best_process = min(r["wall_s"] for r in rows if r["backend"] == "process")
    record_metrics(
        __file__,
        serial_wall_s=serial_wall,
        best_thread_wall_s=best_thread,
        best_process_wall_s=best_process,
        process_overhead_x=round(best_process / max(best_thread, 1e-9), 3),
        reports=rows[0]["reports"],
    )
    assert all(r["reports"] == rows[0]["reports"] for r in rows)


if __name__ == "__main__":
    import json
    import sys

    sys.path.insert(0, "benchmarks")
    from conftest import get_benchmark, get_detector, print_table

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = run_scan_matrix(detector, bench.testing.layout)
    print_table(
        "Scan wall time by execution backend (benchmark1)",
        ["backend", "workers", "wall_s", "reports", "restarts"],
        [[r["backend"], r["workers"], r["wall_s"], r["reports"], r["restarts"]] for r in rows],
    )
    print(json.dumps(rows, indent=2))
