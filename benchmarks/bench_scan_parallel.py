"""Scan parallelism — thread pool vs the supervised process pool.

Times a full-layout scan of benchmark1 on the three execution paths of
:meth:`HotspotDetector.detect`: serial, the in-process
``ThreadPoolExecutor`` margin split, and the crash-isolated
:class:`repro.work.SupervisedPool` sharded scan, across worker counts.
The shape under test: the process backend pays a fixed supervision tax
(fork + per-worker model init + shard journaling), so it must stay
within a small factor of the thread path while buying crash isolation
— and every path must report the identical hotspot set.

Runs under the bench harness (``pytest benchmarks/bench_scan_parallel.py``)
or standalone (``python benchmarks/bench_scan_parallel.py``).
"""

import time
from dataclasses import replace

import numpy as np

from repro.core.detector import HotspotDetector
from repro.work import ScanOptions

WORKER_COUNTS = [1, 2, 4]

#: The fast compute mode must beat exact per-row margin evaluation by at
#: least this factor on the margin stage (the part it vectorizes).
MARGIN_EVAL_MIN_SPEEDUP = 5.0
#: Matrices are replicated to at least this many rows so the timed
#: region is long enough to be stable on a loaded CI box.
MARGIN_EVAL_MIN_ROWS = 4000


def _clone_with_config(detector, **overrides):
    """The same trained model behind a different execution config."""
    return HotspotDetector(
        config=replace(detector.config, **overrides),
        model_=detector.model_,
        feedback_=detector.feedback_,
    )


def _report_key(report):
    return sorted((c.core.x0, c.core.y0, c.core.x1, c.core.y1) for c in report.reports)


def run_scan_matrix(detector, layout, worker_counts=WORKER_COUNTS):
    """One result row per (backend, workers) cell; all report-identical."""
    rows = []
    serial = _clone_with_config(detector, parallel=False)
    started = time.perf_counter()
    baseline = serial.detect(layout)
    rows.append(
        {
            "backend": "serial",
            "workers": 1,
            "wall_s": round(time.perf_counter() - started, 3),
            "reports": baseline.report_count,
            "restarts": 0,
        }
    )
    reference = _report_key(baseline)

    for workers in worker_counts:
        threaded = _clone_with_config(
            detector, parallel=True, worker_count=workers
        )
        started = time.perf_counter()
        report = threaded.detect(layout)
        assert _report_key(report) == reference, "thread backend changed reports"
        rows.append(
            {
                "backend": "thread",
                "workers": workers,
                "wall_s": round(time.perf_counter() - started, 3),
                "reports": report.report_count,
                "restarts": 0,
            }
        )

    for workers in worker_counts:
        started = time.perf_counter()
        report = detector.detect(
            layout, work=ScanOptions(workers=workers, journal_dir=None)
        )
        assert _report_key(report) == reference, "process backend changed reports"
        rows.append(
            {
                "backend": "process",
                "workers": workers,
                "wall_s": round(time.perf_counter() - started, 3),
                "reports": report.report_count,
                "restarts": report.worker_restarts,
            }
        )
    return rows


def run_margin_eval_modes(detector, layout, min_rows=MARGIN_EVAL_MIN_ROWS):
    """Time the margin-evaluation stage in both compute modes.

    Builds the per-kernel feature matrices once (extraction is identical
    in both modes, so it stays outside the timed region), then evaluates
    every matrix with the exact per-row decision function and with the
    fast blocked-GEMM state.  Matrices are tiled to ``min_rows`` rows —
    margin values are row-independent in both modes, so tiling changes
    the timing, never the values being compared.
    """
    from repro.core.extraction import extract_for_detector
    from repro.svm.fastpath import MAX_ULP_DRIFT, margin_drift_ulps

    model = detector.model_
    clips = extract_for_detector(layout, detector.config, 1).clips
    extractions = [model.extractor.extract(clip) for clip in clips]
    matrices = []
    for kernel in model.kernels:
        matrix = np.vstack(
            [
                model.extractor.vectorize(extraction, kernel.schema)
                for extraction in extractions
            ]
        )
        repeats = max(1, -(-min_rows // max(1, matrix.shape[0])))
        matrices.append(np.tile(matrix, (repeats, 1)))
    rows = sum(matrix.shape[0] for matrix in matrices)

    started = time.perf_counter()
    exact = [
        kernel.model.decision_function(matrix)
        for kernel, matrix in zip(model.kernels, matrices)
    ]
    exact_s = time.perf_counter() - started

    # State construction (SV compaction + norm precompute) happens once
    # per model load, so it is warmed outside the timed region — exactly
    # as the registry and the scan paths do.
    states = [kernel.model.fast_state() for kernel in model.kernels]
    started = time.perf_counter()
    fast = [
        state.decision_function(matrix)
        for state, matrix in zip(states, matrices)
    ]
    fast_s = time.perf_counter() - started

    drift = max(
        margin_drift_ulps(e, f, state.scale)
        for e, f, state in zip(exact, fast, states)
    )
    return {
        "kernels": len(model.kernels),
        "rows": rows,
        "exact_s": round(exact_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup_x": round(exact_s / max(fast_s, 1e-9), 2),
        "drift_ulps": round(drift, 3),
        "drift_bound_ulps": MAX_ULP_DRIFT,
    }


def test_margin_eval_fast_speedup(once):
    from conftest import get_benchmark, get_detector, print_table, record_metrics

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    row = once(run_margin_eval_modes, detector, bench.testing.layout)

    print_table(
        "Margin evaluation — exact per-row vs fast blocked GEMM (benchmark1)",
        ["kernels", "rows", "exact_s", "fast_s", "speedup_x", "drift_ulps"],
        [[row["kernels"], row["rows"], row["exact_s"], row["fast_s"],
          row["speedup_x"], row["drift_ulps"]]],
    )
    record_metrics(
        __file__,
        margin_eval_rows=row["rows"],
        margin_eval_exact_s=row["exact_s"],
        margin_eval_fast_s=row["fast_s"],
        margin_eval_speedup_x=row["speedup_x"],
        margin_eval_drift_ulps=row["drift_ulps"],
        margin_eval_drift_bound_ulps=row["drift_bound_ulps"],
    )
    assert row["speedup_x"] >= MARGIN_EVAL_MIN_SPEEDUP, (
        f"fast margin evaluation only {row['speedup_x']}x faster than exact "
        f"(gate: {MARGIN_EVAL_MIN_SPEEDUP}x over {row['rows']} rows)"
    )
    assert row["drift_ulps"] <= row["drift_bound_ulps"]


def test_scan_parallel(once):
    from conftest import get_benchmark, get_detector, print_table, record_metrics

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = once(run_scan_matrix, detector, bench.testing.layout)

    print_table(
        "Scan wall time by execution backend (benchmark1)",
        ["backend", "workers", "wall_s", "reports", "restarts"],
        [[r["backend"], r["workers"], r["wall_s"], r["reports"], r["restarts"]] for r in rows],
    )

    serial_wall = rows[0]["wall_s"]
    best_thread = min(r["wall_s"] for r in rows if r["backend"] == "thread")
    best_process = min(r["wall_s"] for r in rows if r["backend"] == "process")
    record_metrics(
        __file__,
        serial_wall_s=serial_wall,
        best_thread_wall_s=best_thread,
        best_process_wall_s=best_process,
        process_overhead_x=round(best_process / max(best_thread, 1e-9), 3),
        reports=rows[0]["reports"],
    )
    assert all(r["reports"] == rows[0]["reports"] for r in rows)


if __name__ == "__main__":
    import json
    import sys

    sys.path.insert(0, "benchmarks")
    from conftest import get_benchmark, get_detector, print_table

    bench = get_benchmark("benchmark1")
    detector = get_detector("benchmark1", "ours")
    rows = run_scan_matrix(detector, bench.testing.layout)
    print_table(
        "Scan wall time by execution backend (benchmark1)",
        ["backend", "workers", "wall_s", "reports", "restarts"],
        [[r["backend"], r["workers"], r["wall_s"], r["reports"], r["restarts"]] for r in rows],
    )
    print(json.dumps(rows, indent=2))
