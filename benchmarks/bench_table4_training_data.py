"""Table IV — accuracy vs. training-data fraction.

The paper's claim: training converges rapidly — a small fraction of the
training patterns already achieves high accuracy (1 % of data on
benchmark3, 0.6 % on benchmark2 at contest scale).  At reproduction scale
the sweep spans 100 % down to 25 %; the shape under test is that accuracy
degrades slowly (sub-linearly) as training data shrinks.
"""

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.layout.clip import ClipSet

from conftest import get_benchmark, print_table

FRACTIONS = (1.0, 0.65, 0.4, 0.25)
BENCH_NAMES = ("benchmark1", "benchmark3")


def subsample_training(training: ClipSet, fraction: float) -> ClipSet:
    """A deterministic stratified subsample of a training clip set."""
    subset = ClipSet(training.spec)
    hotspots = training.hotspots()
    non_hotspots = training.non_hotspots()
    keep_hs = max(2, round(len(hotspots) * fraction))
    keep_nhs = max(4, round(len(non_hotspots) * fraction))
    for clip in hotspots[:keep_hs]:
        subset.add(clip)
    for clip in non_hotspots[:keep_nhs]:
        subset.add(clip)
    return subset


def test_table4_training_fraction(once):
    rows = []
    accuracy_by_bench = {}
    for name in BENCH_NAMES:
        bench = get_benchmark(name)
        accuracies = []
        for fraction in FRACTIONS:
            subset = subsample_training(bench.training, fraction)
            detector = HotspotDetector(DetectorConfig.ours())
            detector.fit(subset)
            result = detector.score(bench.testing)
            accuracies.append(result.score.accuracy)
            rows.append(
                (
                    name,
                    f"{fraction:.0%}",
                    len(subset.hotspots()),
                    len(subset.non_hotspots()),
                    result.score.hits,
                    result.score.extras,
                    f"{result.score.accuracy:.2%}",
                )
            )
        accuracy_by_bench[name] = accuracies
    print_table(
        "Table IV: accuracy vs training-data fraction",
        ["benchmark", "data", "#hs", "#nhs", "#hit", "#extra", "accuracy"],
        rows,
    )

    for name, accuracies in accuracy_by_bench.items():
        # Rapid convergence shape: a quarter of the data keeps at least
        # 60 % of full-data accuracy.
        assert accuracies[-1] >= 0.6 * accuracies[0], (name, accuracies)

    bench = get_benchmark("benchmark1")
    quarter = subsample_training(bench.training, 0.25)
    detector = HotspotDetector(DetectorConfig.ours())
    once(detector.fit, quarter)
