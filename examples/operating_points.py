"""Operating points: the accuracy / false-alarm trade-off in practice.

Physical-verification teams run hotspot detection at different operating
points depending on schedule pressure: a signoff run wants every hotspot
(maximum hits, extras triaged by hand), an ECO loop wants a short, highly
trusted list.  This example trains one detector and sweeps its decision
threshold (the Fig. 15 axis), printing the trade-off curve and the three
named operating points from Table II.

Run:  python examples/operating_points.py
"""

from repro import DetectorConfig, HotspotDetector, generate_benchmark
from repro.core.extraction import extract_for_detector
from repro.core.metrics import score_reports
from repro.core.removal import remove_redundant_clips


def main() -> None:
    bench = generate_benchmark("benchmark3", scale=0.5)
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(bench.training)

    # Compute candidate margins once; each threshold reuses them.
    extraction = extract_for_detector(bench.testing.layout, detector.config)
    margins = detector.margins(extraction.clips)
    truth = bench.testing.hotspot_cores()

    def factory(core):
        return bench.testing.layout.cut_clip_at_core(detector.config.spec, core)

    print(f"{'threshold':>10} {'hits':>6} {'extras':>7} {'hit rate':>9} {'hit/extra':>10}")
    for threshold in (-0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0):
        flagged = [
            clip
            for clip, margin in zip(extraction.clips, margins)
            if margin >= threshold
        ]
        reports = remove_redundant_clips(
            flagged, detector.config.spec, detector.config.removal, factory
        )
        score = score_reports(reports, truth, bench.testing.area_um2)
        ratio = score.hit_extra_ratio
        ratio_text = "inf" if ratio == float("inf") else f"{ratio:.3f}"
        print(
            f"{threshold:>+10.2f} {score.hits:>6} {score.extras:>7} "
            f"{score.accuracy:>8.1%} {ratio_text:>10}"
        )

    print("\nNamed operating points (Table II):")
    for label, config in (
        ("ours", DetectorConfig.ours()),
        ("ours_med", DetectorConfig.ours_med()),
        ("ours_low", DetectorConfig.ours_low()),
    ):
        result = detector.score(bench.testing, threshold=config.decision_threshold)
        score = result.score
        print(
            f"  {label:9s} thr={config.decision_threshold:+.2f}: "
            f"{score.hits}/{score.actual_hotspots} hits, {score.extras} extras "
            f"({score.accuracy:.1%})"
        )


if __name__ == "__main__":
    main()
