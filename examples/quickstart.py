"""Quickstart: train the framework and scan a layout for hotspots.

Generates an ICCAD-2012-like benchmark pair (synthetic substitution for
the proprietary contest data — see DESIGN.md), trains the full framework
(topological classification, critical features, multiple SVM kernels,
feedback kernel), scans the testing layout, and scores the reports
against ground truth.

Run:  python examples/quickstart.py
"""

from repro import DetectorConfig, HotspotDetector, generate_benchmark


def main() -> None:
    print("Generating benchmark1 (training clips + testing layout)...")
    bench = generate_benchmark("benchmark1", scale=0.6)
    stats = bench.stats()
    print(
        f"  training: {stats['train_hs']} hotspots / {stats['train_nhs']} "
        f"nonhotspots; testing: {stats['test_hs']} planted hotspots over "
        f"{stats['area_um2']:.0f} um^2"
    )

    print("\nTraining the full framework (DetectorConfig.ours())...")
    detector = HotspotDetector(DetectorConfig.ours())
    report = detector.fit(bench.training)
    print(
        f"  {report.kernels} SVM kernels over {report.hotspot_clusters} "
        f"hotspot clusters; {report.nonhotspot_centroids} nonhotspot "
        f"centroids after downsampling; feedback kernel trained: "
        f"{report.feedback_trained}  ({report.train_seconds:.1f}s)"
    )

    print("\nScanning the testing layout...")
    result = detector.score(bench.testing)
    print(
        f"  {result.extraction.candidate_count} candidate clips "
        f"(of {result.extraction.anchor_count} anchors); "
        f"{result.flagged_before_feedback} flagged, "
        f"{result.flagged_after_feedback} after feedback, "
        f"{result.report_count} final reports  ({result.eval_seconds:.1f}s)"
    )

    score = result.score
    print("\nScore vs ground truth:")
    print(f"  hits      : {score.hits} / {score.actual_hotspots}")
    print(f"  accuracy  : {score.accuracy:.2%}")
    print(f"  extras    : {score.extras}")
    print(f"  hit/extra : {score.hit_extra_ratio:.3f}")

    # Individual reports are ordinary clips: inspect one.
    if result.reports:
        first = result.reports[0]
        print(
            f"\nFirst report: core at ({first.core.x0}, {first.core.y0}), "
            f"{len(first.core_rects())} polygons in core, "
            f"core density {first.core_density():.2%}"
        )


if __name__ == "__main__":
    main()
