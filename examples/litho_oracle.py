"""Lithography simulation as oracle, screen, and visual debugger.

Three things the lite litho simulator is for:

1. **oracle** — label your own clips when no foundry data exists (the
   role simulation plays for real training sets);
2. **screen** — the brute-force category-1 detector: most accurate,
   slowest (Section I's comparison, quantified);
3. **debugging** — render what actually printed next to what was drawn.

Run:  python examples/litho_oracle.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import DetectorConfig, HotspotDetector, generate_benchmark
from repro.data.benchmarks import ICCAD_SPEC
from repro.litho import (
    LithoSimConfig,
    LithoSimDetector,
    OpticsConfig,
    aerial_image,
    label_clip_by_simulation,
    simulate_clip,
)
from repro.viz import SvgCanvas, render_detection_svg


def oracle_demo(bench) -> None:
    print("== Oracle: simulation vs planted ground truth ==")
    agreements = 0
    sample = bench.training.hotspots()[:8] + bench.training.non_hotspots()[:8]
    for clip in sample:
        simulated = label_clip_by_simulation(clip)
        agreements += simulated is clip.label
    print(f"  simulator agrees with planted labels on {agreements}/{len(sample)} clips")


def screen_demo(bench) -> None:
    print("\n== Screen: brute-force simulation vs the trained framework ==")
    sim = LithoSimDetector(ICCAD_SPEC)
    started = time.perf_counter()
    sim_report = sim.score(bench.testing)
    sim_seconds = time.perf_counter() - started

    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(bench.training)
    started = time.perf_counter()
    ml_report = detector.score(bench.testing)
    ml_seconds = time.perf_counter() - started

    print(
        f"  simulation : {sim_report.score.hits}/{sim_report.score.actual_hotspots} hits, "
        f"{sim_report.score.extras} extras, {sim_seconds:.1f}s"
    )
    print(
        f"  framework  : {ml_report.score.hits}/{ml_report.score.actual_hotspots} hits, "
        f"{ml_report.score.extras} extras, {ml_seconds:.1f}s (after training)"
    )
    return ml_report


def debug_demo(bench, workdir: Path) -> None:
    print("\n== Debugger: aerial image of one hotspot clip ==")
    clip = bench.training.hotspots()[0]
    report = simulate_clip(clip)
    print(f"  defect analysis: {report.kind}")

    # Render the aerial intensity as an SVG heat strip over the core.
    optics = OpticsConfig()
    window = clip.core.expanded(400)
    rects = [r for r in (rect.intersection(window) for rect in clip.rects) if r]
    intensity = aerial_image(rects, window, optics)
    canvas = SvgCanvas(window, width_px=600)
    from repro.geometry.rect import Rect

    p = optics.pixel_nm
    step = 4  # render 40 nm blocks to keep the SVG small
    for row in range(0, intensity.shape[0] - step, step):
        for col in range(0, intensity.shape[1] - step, step):
            value = float(intensity[row : row + step, col : col + step].mean())
            if value < 0.05:
                continue
            shade = int(255 - 200 * min(1.0, value))
            cell = Rect(
                window.x0 + col * p,
                window.y0 + row * p,
                window.x0 + (col + step) * p,
                window.y0 + (row + step) * p,
            )
            canvas.add_rect(cell, f'fill="rgb(255,{shade},{shade})" stroke="none"')
    for rect in rects:
        canvas.add_rect(rect, 'fill="none" stroke="#333" stroke-width="1"')
    out = workdir / "aerial.svg"
    canvas.save(out)
    print(f"  aerial-image rendering -> {out}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_litho_"))
    bench = generate_benchmark("benchmark1", scale=0.4)
    oracle_demo(bench)
    ml_report = screen_demo(bench)
    debug_demo(bench, workdir)

    out = workdir / "detection.svg"
    render_detection_svg(bench.testing, ml_report.reports, out)
    print(f"\nDetection overview rendering -> {out}")


if __name__ == "__main__":
    main()
