"""Section IV extensions: multilayer hotspots and double patterning.

Demonstrates the two extension detectors on their dedicated workloads:

- a cross-layer hotspot (metal-2 wire crossing a metal-1 dead-zone gap)
  that metal-1-only features cannot see, and
- a double-patterning hotspot whose combined geometry looks harmless but
  whose mask decomposition contains a same-mask spacing violation.

Run:  python examples/multilayer_detection.py
"""

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.training import train_multi_kernel
from repro.data.multilayer import generate_dpt_set, generate_multilayer_set
from repro.layout import ClipLabel, ClipSet, ClipSpec
from repro.multilayer import DptDetector, MultiLayerDetector, decompose

SPEC = ClipSpec()


def multilayer_demo() -> None:
    print("== Multilayer hotspots (Section IV-A) ==")
    clips = generate_multilayer_set(16, 24, SPEC)
    train = clips[:12] + clips[16:34]
    test = clips[12:16] + clips[34:]
    truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])

    detector = MultiLayerDetector(DetectorConfig.ours())
    kernels = detector.fit(train)
    predictions = detector.predict(test)
    accuracy = (predictions == truth).mean()
    print(f"  multilayer detector: {kernels} kernels, test accuracy {accuracy:.1%}")

    # Control: the same patterns seen on metal 1 only.
    single = ClipSet(SPEC)
    for clip in train:
        single.add(clip.layer_clip(1))
    model = train_multi_kernel(single, DetectorConfig.ours())
    single_pred = model.predict([c.layer_clip(1) for c in test])
    single_accuracy = (single_pred == truth).mean()
    print(f"  metal-1-only control:              test accuracy {single_accuracy:.1%}")
    print("  (the hotspot/safe cores are identical on metal 1 by construction)")


def dpt_demo() -> None:
    print("\n== Double patterning (Section IV-B) ==")
    clips = generate_dpt_set(14, 18, SPEC)

    # Show what the decomposer does to one hotspot clip.
    sample = clips[0]
    decomposition = decompose(list(sample.rects), min_same_mask_spacing=100)
    print(
        f"  sample clip: {len(sample.rects)} rects -> mask1 "
        f"{len(decomposition.mask1)}, mask2 {len(decomposition.mask2)}, "
        f"native conflicts {len(decomposition.conflicts)}"
    )

    train = clips[:10] + clips[14:28]
    test = clips[10:14] + clips[28:]
    truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])
    detector = DptDetector(DetectorConfig.ours(), min_same_mask_spacing=100)
    kernels = detector.fit(train)
    predictions = detector.predict(test)
    accuracy = (predictions == truth).mean()
    print(f"  DPT detector: {kernels} kernels, test accuracy {accuracy:.1%}")


if __name__ == "__main__":
    multilayer_demo()
    dpt_demo()
