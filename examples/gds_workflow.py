"""GDSII workflow: detect hotspots in a layout that lives on disk as GDSII.

Real physical-verification flows hand layouts around as GDSII streams.
This example exercises the from-scratch GDSII substrate end to end:

1. generate a testing layout and *write it to a real GDSII file*,
2. write the labelled training clips to GDSII too (one cell per clip,
   label encoded in the cell name — the contest archive convention),
3. read both back, reconstruct the clip set and the layout,
4. train and scan as usual, and
5. export the hotspot reports as a GDSII overlay (marker cells) that any
   layout viewer can merge over the design.

Run:  python examples/gds_workflow.py
"""

import tempfile
from pathlib import Path

from repro import DetectorConfig, HotspotDetector, generate_benchmark
from repro.data.benchmarks import ICCAD_SPEC
from repro.gdsii import GdsBoundary, GdsLibrary, write_library_file
from repro.layout import (
    ClipSet,
    load_clipset_gds,
    load_layout_gds,
    save_clipset_gds,
    save_layout_gds,
)


def export_reports_gds(reports, path: Path) -> None:
    """Write hotspot reports as a marker-layer GDSII overlay."""
    library = GdsLibrary(name="HOTSPOTS")
    top = library.new_structure("HOTSPOT_MARKERS")
    for report in reports:
        # Layer 63 is a conventional marker layer; the core box is the
        # actionable region.
        top.add(GdsBoundary(63, 0, list(report.core.corners())))
    write_library_file(library, path)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_gds_"))
    print(f"Working directory: {workdir}")

    bench = generate_benchmark("benchmark5", scale=1.0)

    layout_path = workdir / "testing_layout.gds"
    clips_path = workdir / "training_clips.gds"
    print("Writing layout and training clips to GDSII...")
    save_layout_gds(bench.testing.layout, layout_path)
    save_clipset_gds(bench.training, clips_path)
    print(
        f"  {layout_path.name}: {layout_path.stat().st_size / 1024:.0f} KiB, "
        f"{clips_path.name}: {clips_path.stat().st_size / 1024:.0f} KiB"
    )

    print("Reading them back...")
    layout = load_layout_gds(layout_path)
    training: ClipSet = load_clipset_gds(clips_path, ICCAD_SPEC)
    print(
        f"  layout: {layout.rect_count()} rectangles on layers "
        f"{layout.layer_numbers()}; training: {len(training.hotspots())} "
        f"hotspot / {len(training.non_hotspots())} nonhotspot clips"
    )

    print("Training and scanning...")
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(training)
    result = detector.detect(layout)
    print(f"  {result.report_count} hotspot reports")

    overlay_path = workdir / "hotspot_markers.gds"
    export_reports_gds(result.reports, overlay_path)
    print(f"Marker overlay written to {overlay_path}")

    # Score against the generator's ground truth for reference.
    from repro.core.metrics import score_reports

    score = score_reports(
        result.reports, bench.testing.hotspot_cores(), bench.testing.area_um2
    )
    print(
        f"Reference score: {score.hits}/{score.actual_hotspots} hits, "
        f"{score.extras} extras ({score.accuracy:.1%} accuracy)"
    )


if __name__ == "__main__":
    main()
