"""Bring your own patterns: building clip sets and layouts from scratch.

The benchmark generator is convenient, but a downstream user will have
their own geometry.  This example builds a tiny pattern library by hand —
raw rectangles in and out of clips, a hand-made layout, GDSII-free — and
runs the pipeline on it, poking at the intermediate representations along
the way (directional strings, clusters, critical features).

Run:  python examples/custom_patterns.py
"""

from repro import DetectorConfig, HotspotDetector
from repro.features import FeatureConfig, FeatureExtractor
from repro.geometry import Rect
from repro.layout import Clip, ClipLabel, ClipSet, ClipSpec, Layout
from repro.topology import TopologicalClassifier, directional_strings

SPEC = ClipSpec(core_side=1200, clip_side=4800)


def line_end_pair(x: int, y: int, gap: int, width: int = 80) -> list[Rect]:
    """Two facing line ends with the given gap (the tip-to-tip motif)."""
    return [
        Rect(x, y, x + 500, y + width),
        Rect(x + 500 + gap, y, x + 1000 + gap, y + width),
    ]


def make_clip(rects, label) -> Clip:
    """Anchor a clip core at the geometry's lower-left corner."""
    x0 = min(r.x0 for r in rects)
    y0 = min(r.y0 for r in rects)
    core = Rect(x0, y0, x0 + SPEC.core_side, y0 + SPEC.core_side)
    return Clip.build(SPEC.clip_for_core(core), SPEC, rects, label)


def main() -> None:
    # --- a hand-made training library -------------------------------
    training = ClipSet(SPEC)
    for i, gap in enumerate((45, 55, 60, 70, 50, 65)):  # failing gaps
        training.add(make_clip(line_end_pair(0, 100 * i, gap), ClipLabel.HOTSPOT))
    for i, gap in enumerate((150, 200, 260, 180, 220, 300, 170, 240)):  # safe
        training.add(make_clip(line_end_pair(0, 100 * i, gap), ClipLabel.NON_HOTSPOT))

    # --- inspect the intermediate representations --------------------
    sample = training.hotspots()[0]
    strings = directional_strings(sample.core_rects(), sample.core)
    print("Directional strings of a hotspot core:")
    print(f"  bottom={strings.bottom} right={strings.right}")
    print(f"  top={strings.top} left={strings.left}")

    classifier = TopologicalClassifier()
    clusters = classifier.classify(training.hotspots())
    print(f"\nHotspot clusters: {len(clusters)} "
          f"(sizes {[len(c.members) for c in clusters]})")

    extractor = FeatureExtractor(FeatureConfig())
    extraction = extractor.extract(sample)
    print(f"Critical features of the sample: {len(extraction.rules)} rule "
          f"rectangles; nontopo: corners={extraction.nontopo.corner_count}, "
          f"min spacing={extraction.nontopo.min_external}")

    # --- train ---------------------------------------------------------
    detector = HotspotDetector(DetectorConfig.ours())
    report = detector.fit(training)
    print(f"\nTrained {report.kernels} kernel(s).")

    # --- a hand-made layout to scan ------------------------------------
    layout = Layout()
    planted = {}
    for index, gap in enumerate((50, 65, 200, 250, 58)):
        x = 8000 + index * 9000
        for rect in line_end_pair(x, 8000, gap):
            layout.add_rect(1, rect)
        planted[x] = gap
    # Context wires so clips pass the polygon-distribution requirements.
    # They stay clear of each pair's anchored core window (y in
    # [8000, 9200]) so the core topology matches the training library.
    for index in range(len(planted)):
        x = 8000 + index * 9000
        for row in range(-8, 14):
            y = 8000 + 250 + row * 400
            if 7800 <= y <= 9300:
                continue
            layout.add_rect(1, Rect(x - 1500, y, x + 2500, y + 80))

    result = detector.detect(layout)
    print(f"\nScan: {result.extraction.candidate_count} candidates, "
          f"{result.report_count} hotspot reports")
    for report_clip in result.reports:
        x0 = report_clip.core.x0
        nearest = min(planted, key=lambda x: abs(x - x0))
        print(
            f"  report core at x={x0}: nearest planted pair has gap "
            f"{planted[nearest]} nm"
        )


if __name__ == "__main__":
    main()
