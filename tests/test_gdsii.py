"""Tests for the GDSII substrate: record codec, reader/writer, flattening."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GdsiiError, GdsiiRecordError
from repro.gdsii.flatten import flatten_structure, flatten_top
from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsBox,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsTransform,
    check_reference_closure,
)
from repro.gdsii.reader import read_library
from repro.gdsii.records import (
    DataType,
    RecordType,
    decode_real8,
    decode_record,
    encode_real8,
    encode_record,
    iter_records,
)
from repro.gdsii.writer import write_library
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestReal8:
    @pytest.mark.parametrize(
        "value", [0.0, 1.0, -1.0, 1e-9, 1e-3, 0.5, 2.0, 1e6, -273.15]
    )
    def test_roundtrip(self, value):
        assert decode_real8(encode_real8(value)) == pytest.approx(
            value, rel=1e-14, abs=1e-300
        )

    def test_zero_is_all_zero_bytes(self):
        assert encode_real8(0.0) == b"\x00" * 8

    def test_known_encoding_of_one(self):
        # 1.0 = 0x41 10 00 00 00 00 00 00 in excess-64 format
        assert encode_real8(1.0) == bytes([0x41, 0x10, 0, 0, 0, 0, 0, 0])

    def test_units_values(self):
        # The canonical UNITS payload (1e-3 user units, 1e-9 metres).
        for value in (1e-3, 1e-9):
            assert decode_real8(encode_real8(value)) == pytest.approx(value, rel=1e-15)

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_roundtrip_property(self, value):
        assert decode_real8(encode_real8(value)) == pytest.approx(value, rel=1e-14)

    def test_wrong_length_raises(self):
        with pytest.raises(GdsiiRecordError):
            decode_real8(b"\x00" * 4)


class TestRecordCodec:
    def test_int2_roundtrip(self):
        data = encode_record(RecordType.LAYER, DataType.INT2, [7])
        record, offset = decode_record(data, 0)
        assert record.rtype is RecordType.LAYER
        assert record.ints() == [7]
        assert offset == len(data)

    def test_int4_roundtrip(self):
        values = [0, -1, 2**31 - 1, -(2**31)]
        data = encode_record(RecordType.XY, DataType.INT4, values)
        record, _ = decode_record(data, 0)
        assert record.ints() == values

    def test_ascii_padded_to_even(self):
        data = encode_record(RecordType.LIBNAME, DataType.ASCII, "ABC")
        assert len(data) % 2 == 0
        record, _ = decode_record(data, 0)
        assert record.text() == "ABC"

    def test_no_data(self):
        data = encode_record(RecordType.ENDEL, DataType.NO_DATA, None)
        assert len(data) == 4
        record, _ = decode_record(data, 0)
        assert record.payload is None

    def test_truncated_header_raises(self):
        with pytest.raises(GdsiiRecordError):
            decode_record(b"\x00\x08", 0)

    def test_overrun_raises(self):
        data = encode_record(RecordType.LAYER, DataType.INT2, [7])
        with pytest.raises(GdsiiRecordError):
            decode_record(data[:-1], 0)

    def test_unknown_record_type_raises(self):
        bad = b"\x00\x04\xfe\x00"
        with pytest.raises(GdsiiRecordError):
            decode_record(bad, 0)

    def test_iter_records_requires_endlib(self):
        data = encode_record(RecordType.HEADER, DataType.INT2, [600])
        with pytest.raises(GdsiiRecordError):
            list(iter_records(data))

    def test_type_mismatch_accessors(self):
        data = encode_record(RecordType.LIBNAME, DataType.ASCII, "X")
        record, _ = decode_record(data, 0)
        with pytest.raises(GdsiiRecordError):
            record.ints()


def build_sample_library() -> GdsLibrary:
    library = GdsLibrary(name="SAMPLE")
    cell = library.new_structure("CELL")
    cell.add(GdsBoundary.from_rect(1, 0, Rect(0, 0, 100, 50)))
    cell.add(
        GdsBoundary(2, 5, [Point(0, 0), Point(30, 0), Point(30, 20), Point(0, 20)])
    )
    cell.add(GdsPath(3, 0, 10, [Point(0, 100), Point(200, 100)]))
    cell.add(GdsBox(4, 1, list(Rect(5, 5, 15, 15).corners())))
    top = library.new_structure("TOP")
    top.add(GdsSRef("CELL", Point(1000, 2000)))
    top.add(
        GdsSRef("CELL", Point(5000, 0), GdsTransform(reflect_x=True, rotation_degrees=90))
    )
    top.add(
        GdsARef(
            "CELL",
            Point(0, 10000),
            columns=3,
            rows=2,
            col_step=Point(500, 0),
            row_step=Point(0, 400),
        )
    )
    return library


class TestLibraryRoundtrip:
    def test_roundtrip_structure_names(self):
        library = build_sample_library()
        again = read_library(write_library(library))
        assert set(again.structures) == {"CELL", "TOP"}

    def test_roundtrip_boundary_geometry(self):
        library = build_sample_library()
        again = read_library(write_library(library))
        bounds = again.get("CELL").boundaries()
        assert bounds[0].to_polygon().bbox() == Rect(0, 0, 100, 50)
        assert bounds[0].layer == 1
        assert bounds[1].layer == 2 and bounds[1].datatype == 5

    def test_roundtrip_is_stable(self):
        """write(read(write(lib))) == write(lib) byte-for-byte."""
        library = build_sample_library()
        once = write_library(library)
        twice = write_library(read_library(once))
        assert once == twice

    def test_units_preserved(self):
        library = build_sample_library()
        again = read_library(write_library(library))
        assert again.user_unit == pytest.approx(1e-3)
        assert again.meters_per_dbu == pytest.approx(1e-9)

    def test_duplicate_structure_rejected(self):
        library = GdsLibrary()
        library.new_structure("A")
        with pytest.raises(GdsiiError):
            library.new_structure("A")

    def test_dangling_reference_rejected_on_write(self):
        library = GdsLibrary()
        top = library.new_structure("TOP")
        top.add(GdsSRef("MISSING", Point(0, 0)))
        assert check_reference_closure(library) == "MISSING"
        with pytest.raises(GdsiiError):
            write_library(library)

    def test_single_top(self):
        library = build_sample_library()
        assert library.single_top().name == "TOP"

    def test_garbage_raises(self):
        with pytest.raises(GdsiiError):
            read_library(b"not a gds file at all..")


class TestTransforms:
    def test_rotation_application(self):
        t = GdsTransform(rotation_degrees=90)
        assert t.apply(Point(10, 0)) == Point(0, 10)

    def test_reflect_then_rotate(self):
        t = GdsTransform(reflect_x=True, rotation_degrees=90)
        # reflect: (10, 5) -> (10, -5); rotate 90: -> (5, 10)
        assert t.apply(Point(10, 5)) == Point(5, 10)

    def test_non_right_angle_rejected(self):
        with pytest.raises(GdsiiError):
            GdsTransform(rotation_degrees=45)

    def test_magnification_rejected(self):
        with pytest.raises(GdsiiError):
            GdsTransform(magnification=2.0)


class TestFlatten:
    def test_flatten_counts(self):
        library = build_sample_library()
        shapes = flatten_top(library)
        # CELL contributes 2 boundaries + 1 path rect + 1 box = 4 shapes,
        # placed 2 (SREFs) + 6 (AREF 3x2) = 8 times.
        assert len(shapes) == 4 * 8

    def test_flatten_translation(self):
        library = GdsLibrary()
        cell = library.new_structure("CELL")
        cell.add(GdsBoundary.from_rect(1, 0, Rect(0, 0, 10, 10)))
        top = library.new_structure("TOP")
        top.add(GdsSRef("CELL", Point(100, 200)))
        shapes = flatten_structure(library, top)
        assert shapes[0][2].bbox() == Rect(100, 200, 110, 210)

    def test_flatten_nested_transforms(self):
        library = GdsLibrary()
        leaf = library.new_structure("LEAF")
        leaf.add(GdsBoundary.from_rect(1, 0, Rect(0, 0, 10, 4)))
        mid = library.new_structure("MID")
        mid.add(GdsSRef("LEAF", Point(0, 0), GdsTransform(rotation_degrees=90)))
        top = library.new_structure("TOP")
        top.add(GdsSRef("MID", Point(0, 0), GdsTransform(rotation_degrees=90)))
        shapes = flatten_structure(library, top)
        # two 90-degree rotations = 180 degrees: bbox mirrors through origin
        assert shapes[0][2].bbox() == Rect(-10, -4, 0, 0)

    def test_flatten_cycle_detected(self):
        library = GdsLibrary()
        a = library.new_structure("A")
        b = library.new_structure("B")
        a.add(GdsSRef("B", Point(0, 0)))
        b.add(GdsSRef("A", Point(0, 0)))
        with pytest.raises(GdsiiError):
            flatten_structure(library, a)

    def test_aref_grid_positions(self):
        aref = GdsARef(
            "X", Point(0, 0), columns=2, rows=2, col_step=Point(10, 0), row_step=Point(0, 5)
        )
        assert sorted(aref.placements()) == [
            Point(0, 0),
            Point(0, 5),
            Point(10, 0),
            Point(10, 5),
        ]

    def test_path_width_expansion(self):
        path = GdsPath(1, 0, 10, [Point(0, 0), Point(100, 0)])
        polys = path.to_polygons()
        assert len(polys) == 1
        assert polys[0].bbox() == Rect(0, -5, 100, 5)

    def test_diagonal_path_rejected(self):
        path = GdsPath(1, 0, 10, [Point(0, 0), Point(10, 10)])
        with pytest.raises(GdsiiError):
            path.to_polygons()

    def test_zero_width_path_rejected(self):
        path = GdsPath(1, 0, 0, [Point(0, 0), Point(10, 0)])
        with pytest.raises(GdsiiError):
            path.to_polygons()
