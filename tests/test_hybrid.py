"""Tests for the hybrid PM+ML detector."""

import pytest

from repro.baselines.hybrid import HybridDetector
from repro.baselines.pattern_match import PatternMatcher
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.errors import ConfigError


class TestHybrid:
    @pytest.fixture(scope="class")
    def reports(self, small_benchmark):
        union = HybridDetector(mode="union")
        union.fit(small_benchmark.training)
        intersection = HybridDetector(mode="intersection")
        intersection.fit(small_benchmark.training)
        return {
            "union": union.score(small_benchmark.testing),
            "intersection": intersection.score(small_benchmark.testing),
        }

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            HybridDetector(mode="xor")

    def test_union_dominates_intersection_on_hits(self, reports):
        assert reports["union"].score.hits >= reports["intersection"].score.hits

    def test_intersection_dominates_union_on_extras(self, reports):
        assert (
            reports["intersection"].score.extras <= reports["union"].score.extras
        )

    def test_union_flags_superset(self, reports):
        union = reports["union"]
        assert union.pm_flags <= union.pm_flags + union.ml_flags
        assert len(union.reports) > 0

    def test_union_never_loses_to_either_engine(self, small_benchmark, reports):
        """The paper's hybrid claim: combining engines enhances accuracy."""
        ml = HotspotDetector(DetectorConfig.ours())
        ml.fit(small_benchmark.training)
        ml_score = ml.score(small_benchmark.testing).score

        pm = PatternMatcher()
        pm.fit(small_benchmark.training)
        pm_score = pm.score(small_benchmark.testing).score

        assert reports["union"].score.hits >= ml_score.hits
        assert reports["union"].score.hits >= pm_score.hits
