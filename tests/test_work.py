"""repro.work: supervised pool, sharded scans, journal resume, chaos.

The pool tests use tiny module-level task functions (payloads must
pickle into worker processes).  The scan tests share one fitted
detector per module; the CLI test drives ``repro scan`` in a real
subprocess and SIGKILLs it mid-scan via an injected fault plan.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.extraction import candidate_anchors
from repro.core.persist import save_detector
from repro.errors import (
    ConfigError,
    ReproError,
    ScanDrainedError,
    StageTimeout,
    WorkerCrashError,
)
from repro.layout.io import save_layout_gds
from repro.resilience import QuarantineReport, faults
from repro.work import (
    PoolConfig,
    PoolTask,
    ScanJournal,
    ScanOptions,
    SupervisedPool,
    scan_fingerprint,
    shard_anchors,
)


# ----------------------------------------------------------------------
# module-level task functions (pickled into workers)
# ----------------------------------------------------------------------
def _echo(state, payload):
    return payload * 2


def _crash_once(state, payload):
    sentinel = Path(payload)
    if not sentinel.exists():
        sentinel.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _hang(state, payload):
    time.sleep(60)
    return "never"


def _sum_unless_poisoned(state, payload):
    if 13 in payload:
        os.kill(os.getpid(), signal.SIGKILL)
    return sum(payload)


def _sleepy(state, payload):
    time.sleep(payload)
    return payload


def _broken_init():
    raise ValueError("no state for you")


# ----------------------------------------------------------------------
# the supervised pool
# ----------------------------------------------------------------------
class TestSupervisedPool:
    def test_runs_tasks_and_collects_results(self):
        results = {}
        pool = SupervisedPool(PoolConfig(workers=2))
        stats = pool.run(
            [PoolTask(task_id=str(i), fn=_echo, payload=i) for i in range(10)],
            on_result=lambda task, result, info: results.__setitem__(
                task.task_id, result
            ),
        )
        assert stats.tasks_ok == 10
        assert results == {str(i): i * 2 for i in range(10)}
        assert stats.worker_restarts == 0

    def test_crashed_task_retries_on_fresh_worker(self, tmp_path):
        results = []
        pool = SupervisedPool(PoolConfig(workers=1, task_retries=1))
        stats = pool.run(
            [
                PoolTask(
                    task_id="flaky",
                    fn=_crash_once,
                    payload=str(tmp_path / "crashed.flag"),
                )
            ],
            on_result=lambda task, result, info: results.append(result),
        )
        assert results == ["survived"]
        assert stats.worker_restarts >= 1
        assert stats.task_retries == 1
        assert stats.poison_tasks == 0

    def test_hung_task_killed_at_deadline(self):
        poisons = []
        pool = SupervisedPool(
            PoolConfig(workers=1, task_timeout_s=0.5, task_retries=0)
        )
        stats = pool.run(
            [PoolTask(task_id="stuck", fn=_hang, payload=None)],
            on_poison=lambda task, error: poisons.append(error),
        )
        assert stats.poison_tasks == 1
        assert isinstance(poisons[0], StageTimeout)
        assert stats.worker_restarts >= 1

    def test_poison_task_bisected_to_single_item(self):
        results, poisons = [], []

        def split(task):
            items = task.payload
            if len(items) <= 1:
                return None
            half = len(items) // 2
            return [
                PoolTask(
                    task_id=f"{task.task_id}/{side}",
                    fn=_sum_unless_poisoned,
                    payload=chunk,
                    depth=task.depth + 1,
                )
                for side, chunk in enumerate((items[:half], items[half:]))
            ]

        pool = SupervisedPool(PoolConfig(workers=2, task_retries=0))
        stats = pool.run(
            [
                PoolTask(
                    task_id="root",
                    fn=_sum_unless_poisoned,
                    payload=list(range(32)),
                )
            ],
            split=split,
            on_result=lambda task, result, info: results.append(result),
            on_poison=lambda task, error: poisons.append(task.payload),
        )
        # Exactly the offending element is isolated; everything else ran.
        assert poisons == [[13]]
        assert sum(results) == sum(range(32)) - 13
        assert stats.poison_tasks == 1
        assert stats.bisections >= 1

    def test_heartbeat_silence_kills_worker(self):
        poisons = []
        pool = SupervisedPool(
            PoolConfig(
                workers=1,
                task_retries=0,
                task_timeout_s=30.0,
                heartbeat_interval_s=0.05,
                heartbeat_timeout_s=0.3,
            )
        )
        with faults.active("work.heartbeat=error:1"):
            stats = pool.run(
                [PoolTask(task_id="silent", fn=_sleepy, payload=2.0)],
                on_poison=lambda task, error: poisons.append(error),
            )
        assert stats.worker_restarts >= 1
        assert stats.poison_tasks == 1
        assert isinstance(poisons[0], WorkerCrashError)

    def test_worker_recycled_after_max_tasks(self):
        pool = SupervisedPool(PoolConfig(workers=2, max_tasks_per_worker=1))
        stats = pool.run(
            [PoolTask(task_id=str(i), fn=_echo, payload=i) for i in range(4)]
        )
        assert stats.tasks_ok == 4
        assert stats.worker_recycles >= 2

    def test_stop_event_drains_gracefully(self):
        stop = threading.Event()
        results = []

        def collect(task, result, info):
            results.append(result)
            stop.set()  # drain after the first completion

        pool = SupervisedPool(PoolConfig(workers=1))
        stats = pool.run(
            [
                PoolTask(task_id=str(i), fn=_sleepy, payload=0.05)
                for i in range(5)
            ],
            on_result=collect,
            stop_event=stop,
        )
        assert stats.drained
        assert 1 <= stats.tasks_ok < 5
        assert len(results) == stats.tasks_ok

    def test_broken_init_does_not_respawn_forever(self):
        pool = SupervisedPool(PoolConfig(workers=1), init_fn=_broken_init)
        with pytest.raises(WorkerCrashError, match="initialise"):
            pool.run(
                [
                    PoolTask(task_id=str(i), fn=_echo, payload=i)
                    for i in range(50)
                ],
                # splitting must not rescue an init failure either
                split=lambda task: None,
            )

    def test_injected_task_error_is_survivable_chaos(self):
        # An ``error`` fault at work.task fails the attempt in-worker;
        # the supervisor retries the task and it succeeds.  (Counters
        # are per-process: each forked worker carries its own copy of
        # the plan state, so the !1 limit is per worker.)
        results = []
        pool = SupervisedPool(PoolConfig(workers=1, task_retries=2))
        with faults.active("work.task=error:1!1"):
            stats = pool.run(
                [PoolTask(task_id="t", fn=_echo, payload=21)],
                on_result=lambda task, result, info: results.append(result),
            )
        assert results == [42]
        assert stats.task_retries >= 1

    def test_pool_config_validation(self):
        with pytest.raises(ConfigError):
            PoolConfig(workers=0)
        with pytest.raises(ConfigError):
            PoolConfig(task_timeout_s=-1.0)
        with pytest.raises(ConfigError):
            PoolConfig(task_retries=-1)


# ----------------------------------------------------------------------
# quarantine report: thread hammering + process boundary (satellite)
# ----------------------------------------------------------------------
class TestQuarantineSafety:
    def test_concurrent_adds_lose_nothing(self):
        report = QuarantineReport(max_items=50)
        threads = [
            threading.Thread(
                target=lambda: [
                    report.add("Kind", "reason", index=i) for i in range(500)
                ]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert report.total == 8 * 500
        assert report.counts_by_kind() == {"Kind": 4000}
        assert len(report.items()) == 50  # sample stays bounded

    def test_pickle_round_trip_recreates_lock(self):
        report = QuarantineReport()
        report.add("InputError", "bad clip", source="test", anchor=[1, 2])
        clone = pickle.loads(pickle.dumps(report))
        assert clone.total == 1
        assert clone.counts_by_kind() == {"InputError": 1}
        clone.add("InputError", "another")  # lock must work post-unpickle
        assert clone.total == 2
        assert report.total == 1  # the original is untouched

    def test_merge_and_from_dict_round_trip(self):
        source = QuarantineReport()
        for index in range(3):
            source.add("GdsiiError", f"record {index}")
        merged = QuarantineReport.from_dict(source.to_dict())
        target = QuarantineReport()
        target.add("InputError", "pre-existing")
        target.merge(merged)
        assert target.total == 4
        assert target.counts_by_kind() == {"GdsiiError": 3, "InputError": 1}


# ----------------------------------------------------------------------
# sharded scans
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture(scope="module")
def thread_report(fitted, small_benchmark):
    return fitted.detect(small_benchmark.testing.layout)


def _cores(report):
    return [(clip.core.x0, clip.core.y0) for clip in report.reports]


class TestShardedScan:
    def test_shards_partition_the_anchor_set(self, fitted, small_benchmark):
        layout = small_benchmark.testing.layout
        spec = fitted.config.spec
        shards = shard_anchors(layout, spec, 1, spec.clip_side * 2)
        flattened = [anchor for shard in shards for anchor in shard]
        assert sorted(flattened) == candidate_anchors(layout, spec, 1)
        assert len(flattened) == len(set(flattened))

    def test_process_backend_bit_identical(
        self, fitted, small_benchmark, thread_report
    ):
        result = fitted.detect(
            small_benchmark.testing.layout, work=ScanOptions(workers=3)
        )
        assert result.backend == "process"
        assert result.shards_total >= 2
        assert _cores(result) == _cores(thread_report)
        assert (
            result.extraction.anchor_count
            == thread_report.extraction.anchor_count
        )
        assert (
            result.extraction.candidate_count
            == thread_report.extraction.candidate_count
        )
        assert result.flagged_before_feedback == thread_report.flagged_before_feedback

    def test_journal_resume_after_midrun_abort(
        self, fitted, small_benchmark, thread_report, tmp_path
    ):
        layout = small_benchmark.testing.layout
        journal_dir = tmp_path / "journal"
        # Abort the run after the second completed shard (parent-side).
        with faults.active("work.shard=error:1@1!1"):
            with pytest.raises(ReproError, match="injected"):
                fitted.detect(
                    layout, work=ScanOptions(workers=3, journal_dir=journal_dir)
                )
        completed = ScanJournal(journal_dir).completed_ids()
        assert completed, "aborted run should leave journaled shards"

        resumed = fitted.detect(
            layout,
            work=ScanOptions(workers=3, journal_dir=journal_dir, resume=True),
        )
        assert resumed.shards_resumed == len(completed)
        assert _cores(resumed) == _cores(thread_report)
        # The journal clears after success, like training checkpoints.
        assert ScanJournal(journal_dir).completed_ids() == []

    def test_mismatched_journal_is_discarded(
        self, fitted, small_benchmark, tmp_path
    ):
        layout = small_benchmark.testing.layout
        journal_dir = tmp_path / "journal"
        journal = ScanJournal(journal_dir)
        journal.begin("0" * 64, shards=7, shard_side=100, resume=False)
        result = fitted.detect(
            layout,
            work=ScanOptions(
                workers=2, journal_dir=journal_dir, resume=True
            ),
        )
        assert result.shards_resumed == 0

    def test_poison_anchor_is_quarantined_not_fatal(
        self, fitted, small_benchmark, thread_report
    ):
        layout = small_benchmark.testing.layout
        all_anchors = candidate_anchors(layout, fitted.config.spec, 1)
        candidate_set = {
            (clip.core.x0, clip.core.y0)
            for clip in thread_report.extraction.clips
        }
        # Poison an anchor whose clip is rejected at the distribution
        # stage, so the surviving candidate set (and hotspot set) is
        # untouched and comparable to the baseline exactly.
        x, y = next(a for a in all_anchors if a not in candidate_set)
        quarantine = QuarantineReport()
        with faults.active(f"extract.anchor.{x}_{y}=kill:1"):
            result = fitted.detect(
                layout,
                work=ScanOptions(workers=3),
                quarantine=quarantine,
            )
        poison_items = [
            item for item in quarantine.items() if item.kind == "PoisonTaskError"
        ]
        assert len(poison_items) == 1
        assert f"[{x}, {y}]" in poison_items[0].context["anchors"]
        assert result.poison_tasks == 1
        assert result.worker_restarts >= 1
        assert _cores(result) == _cores(thread_report)

    def test_stop_event_drains_to_scan_drained_error(
        self, fitted, small_benchmark, tmp_path
    ):
        stop = threading.Event()
        stop.set()
        with pytest.raises(ScanDrainedError, match="resume"):
            fitted.detect(
                small_benchmark.testing.layout,
                work=ScanOptions(
                    workers=2,
                    journal_dir=tmp_path / "journal",
                    stop_event=stop,
                ),
            )

    def test_fingerprint_ignores_threshold_and_execution(
        self, fitted, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        from dataclasses import replace

        base = scan_fingerprint(layout, 1, fitted.config, fitted.model_, 4800)
        assert base == scan_fingerprint(
            layout, 1, fitted.config.at_threshold(0.5), fitted.model_, 4800
        )
        assert base == scan_fingerprint(
            layout,
            1,
            replace(fitted.config, parallel=True, backend="process"),
            fitted.model_,
            4800,
        )
        assert base != scan_fingerprint(
            layout, 1, fitted.config, fitted.model_, 2400
        )


# ----------------------------------------------------------------------
# CLI: SIGKILLed process scan resumes bit-identically
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scan_workdir(fitted, small_benchmark, tmp_path_factory):
    path = tmp_path_factory.mktemp("work-cli")
    save_detector(fitted, path / "model.npz", name="cli")
    save_layout_gds(small_benchmark.testing.layout, path / "layout.gds")
    return path


def _run_cli(arguments, cwd, extra_env=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _core_lines(stdout: str) -> list[str]:
    return sorted(line for line in stdout.splitlines() if line.startswith("  core"))


class TestCliProcessScan:
    def test_sigkilled_scan_resumes_identically(self, scan_workdir):
        base = [
            "scan",
            "--model", "model.npz",
            "--layout", "layout.gds",
            "--no-manifest",
        ]
        process_args = [
            *base,
            "--backend", "process",
            "--workers", "2",
            "--journal-dir", "journal",
        ]
        # The fault plan SIGKILLs the whole run at the second completed
        # shard — the hard-crash case, nothing gets to clean up.
        killed = _run_cli(
            process_args,
            scan_workdir,
            extra_env={faults.ENV_VAR: "work.shard=kill:1@1!1"},
        )
        assert killed.returncode != 0
        journal_lines = (
            (scan_workdir / "journal" / "journal.jsonl").read_text().splitlines()
        )
        assert len(journal_lines) >= 2  # header + >=1 completed shard

        resumed = _run_cli([*process_args, "--resume"], scan_workdir)
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stderr

        reference = _run_cli(base, scan_workdir)
        assert reference.returncode == 0, reference.stderr
        assert _core_lines(resumed.stdout) == _core_lines(reference.stdout)
        assert _core_lines(resumed.stdout)  # the scan actually found hotspots
        # Success cleared the journal.
        assert not (scan_workdir / "journal" / "journal.jsonl").exists()

    def test_sigterm_drains_with_exit_code_3_then_resumes(self, scan_workdir):
        from repro.cli import main

        journal_dir = scan_workdir / "drain-journal"
        scan_args = [
            "scan",
            "--model", str(scan_workdir / "model.npz"),
            "--layout", str(scan_workdir / "layout.gds"),
            "--backend", "process",
            "--workers", "2",
            "--shard-side", "2400",
            "--journal-dir", str(journal_dir),
            "--no-manifest",
        ]
        timer = threading.Timer(
            0.3, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            code = main(scan_args)
        finally:
            timer.cancel()
        if code == 0:
            pytest.skip("scan finished before the drain signal landed")
        assert code == 3
        assert (journal_dir / "journal.jsonl").exists()
        assert main([*scan_args, "--resume"]) == 0
        assert not journal_dir.exists()  # cleared on success

    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            DetectorConfig(backend="carrier-pigeon")
