"""Tests for model persistence and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import load_detector, save_detector
from repro.errors import ConfigError, NotFittedError


class TestPersistence:
    @pytest.fixture(scope="class")
    def trained(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        return detector

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_detector(HotspotDetector(), tmp_path / "x.npz")

    def test_roundtrip_margins_identical(self, trained, small_benchmark, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        probe = small_benchmark.training.hotspots()[:6]
        assert np.allclose(trained.margins(probe), loaded.margins(probe))

    def test_roundtrip_detection_identical(self, trained, small_benchmark, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        original = trained.score(small_benchmark.testing)
        reloaded = loaded.score(small_benchmark.testing)
        assert original.score.hits == reloaded.score.hits
        assert original.score.extras == reloaded.score.extras

    def test_gates_preserved(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        original_gates = [k.key_set for k in trained.model_.kernels]
        loaded_gates = [k.key_set for k in loaded.model_.kernels]
        assert original_gates == loaded_gates

    def test_feedback_preserved(self, ambit_benchmark, tmp_path):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(ambit_benchmark.training)
        if detector.feedback_ is None:
            pytest.skip("feedback did not train on this fixture")
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        loaded = load_detector(path)
        assert loaded.feedback_ is not None
        probe = ambit_benchmark.training.hotspots()[:4]
        assert np.allclose(
            detector.feedback_.margins(probe), loaded.feedback_.margins(probe)
        )

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigError):
            load_detector(path)


class TestCli:
    def test_generate_then_train_then_scan(self, tmp_path):
        out = tmp_path / "data"
        assert (
            cli_main(
                [
                    "generate",
                    "--benchmark",
                    "benchmark5",
                    "--scale",
                    "0.5",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        clips = out / "benchmark5_training_clips.gds"
        layout = out / "benchmark5_testing_layout.gds"
        truth = out / "benchmark5_truth.json"
        assert clips.exists() and layout.exists() and truth.exists()
        truth_doc = json.loads(truth.read_text())
        assert truth_doc["hotspot_cores"]

        model = tmp_path / "model.npz"
        assert (
            cli_main(["train", "--clips", str(clips), "--model", str(model)]) == 0
        )
        assert model.exists()

        markers = tmp_path / "markers.gds"
        assert (
            cli_main(
                [
                    "scan",
                    "--model",
                    str(model),
                    "--layout",
                    str(layout),
                    "--report",
                    str(markers),
                ]
            )
            == 0
        )
        assert markers.exists()

        assert cli_main(["info", "--model", str(model)]) == 0

    def test_score_json(self, capsys):
        assert (
            cli_main(
                ["score", "--benchmark", "benchmark5", "--scale", "0.4", "--json"]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()[-1]
        payload = json.loads(out)
        assert payload["benchmark"] == "benchmark5"
        assert 0.0 <= payload["accuracy"] <= 1.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["generate", "--benchmark", "nope"])


class TestCliExplain:
    def test_explain_site(self, tmp_path, capsys):
        out = tmp_path / "data"
        cli_main(
            ["generate", "--benchmark", "benchmark5", "--scale", "0.4", "--out", str(out)]
        )
        model = tmp_path / "model.npz"
        cli_main(
            ["train", "--clips", str(out / "benchmark5_training_clips.gds"), "--model", str(model)]
        )
        truth = json.loads((out / "benchmark5_truth.json").read_text())
        x, y, _, _ = truth["hotspot_cores"][0]
        assert (
            cli_main(
                [
                    "explain",
                    "--model",
                    str(model),
                    "--layout",
                    str(out / "benchmark5_testing_layout.gds"),
                    "--x",
                    str(x),
                    "--y",
                    str(y),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "verdict" in output
