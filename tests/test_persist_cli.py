"""Tests for model persistence and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import load_detector, save_detector
from repro.errors import ConfigError, NotFittedError


class TestPersistence:
    @pytest.fixture(scope="class")
    def trained(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        return detector

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_detector(HotspotDetector(), tmp_path / "x.npz")

    def test_roundtrip_margins_identical(self, trained, small_benchmark, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        probe = small_benchmark.training.hotspots()[:6]
        assert np.allclose(trained.margins(probe), loaded.margins(probe))

    def test_roundtrip_detection_identical(self, trained, small_benchmark, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        original = trained.score(small_benchmark.testing)
        reloaded = loaded.score(small_benchmark.testing)
        assert original.score.hits == reloaded.score.hits
        assert original.score.extras == reloaded.score.extras

    def test_gates_preserved(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_detector(trained, path)
        loaded = load_detector(path)
        original_gates = [k.key_set for k in trained.model_.kernels]
        loaded_gates = [k.key_set for k in loaded.model_.kernels]
        assert original_gates == loaded_gates

    def test_feedback_preserved(self, ambit_benchmark, tmp_path):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(ambit_benchmark.training)
        if detector.feedback_ is None:
            pytest.skip("feedback did not train on this fixture")
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        loaded = load_detector(path)
        assert loaded.feedback_ is not None
        probe = ambit_benchmark.training.hotspots()[:4]
        assert np.allclose(
            detector.feedback_.margins(probe), loaded.feedback_.margins(probe)
        )

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ConfigError):
            load_detector(path)

    @pytest.mark.parametrize("scaler", ["minmax", "standard", "none"])
    def test_roundtrip_without_feedback_each_scaler(
        self, scaler, small_benchmark, tmp_path
    ):
        """A feedback-free detector round-trips for every scaler type."""
        from dataclasses import replace

        base = DetectorConfig.with_topology()  # use_feedback=False
        config = replace(base, svm=replace(base.svm, scale_features=scaler))
        detector = HotspotDetector(config)
        detector.fit(small_benchmark.training)
        assert detector.feedback_ is None
        kernel_model = detector.model_.kernels[0].model
        assert kernel_model.scale_features == scaler

        path = tmp_path / f"model_{scaler}.npz"
        save_detector(detector, path)
        loaded = load_detector(path)

        probe = (
            small_benchmark.training.hotspots()[:6]
            + small_benchmark.training.non_hotspots()[:6]
        )
        assert np.allclose(detector.margins(probe), loaded.margins(probe))
        assert np.array_equal(
            detector.predict_clips(probe), loaded.predict_clips(probe)
        )
        # The ablation switches travel with the archive.
        assert loaded.feedback_ is None
        assert loaded.config.use_feedback is False
        assert loaded.config.use_removal is False

    def test_switches_roundtrip_affect_detect(self, trained, tmp_path):
        """use_removal must survive persistence (it changes detect())."""
        from dataclasses import replace

        trimmed = HotspotDetector(replace(trained.config, use_removal=False))
        trimmed.model_ = trained.model_
        trimmed.feedback_ = trained.feedback_
        path = tmp_path / "noremoval.npz"
        save_detector(trimmed, path)
        loaded = load_detector(path)
        assert loaded.config.use_removal is False

    def test_read_archive_info(self, trained, tmp_path):
        from repro.core.persist import read_archive_info

        path = tmp_path / "model.npz"
        save_detector(trained, path, name="release-1")
        info = read_archive_info(path)
        assert info["kernels"] == len(trained.model_.kernels)
        assert info["feedback"] == (trained.feedback_ is not None)
        assert info["registry"]["name"] == "release-1"
        assert info["spec"]["core_side"] == trained.config.spec.core_side
        with pytest.raises(ConfigError):
            np.savez(tmp_path / "junk.npz", a=np.zeros(3))
            read_archive_info(tmp_path / "junk.npz")


class TestCli:
    def test_generate_then_train_then_scan(self, tmp_path):
        out = tmp_path / "data"
        assert (
            cli_main(
                [
                    "generate",
                    "--benchmark",
                    "benchmark5",
                    "--scale",
                    "0.5",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        clips = out / "benchmark5_training_clips.gds"
        layout = out / "benchmark5_testing_layout.gds"
        truth = out / "benchmark5_truth.json"
        assert clips.exists() and layout.exists() and truth.exists()
        truth_doc = json.loads(truth.read_text())
        assert truth_doc["hotspot_cores"]

        model = tmp_path / "model.npz"
        assert (
            cli_main(["train", "--clips", str(clips), "--model", str(model)]) == 0
        )
        assert model.exists()

        markers = tmp_path / "markers.gds"
        assert (
            cli_main(
                [
                    "scan",
                    "--model",
                    str(model),
                    "--layout",
                    str(layout),
                    "--report",
                    str(markers),
                ]
            )
            == 0
        )
        assert markers.exists()

        assert cli_main(["info", "--model", str(model)]) == 0

    def test_score_json(self, capsys):
        assert (
            cli_main(
                ["score", "--benchmark", "benchmark5", "--scale", "0.4", "--json"]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()[-1]
        payload = json.loads(out)
        assert payload["benchmark"] == "benchmark5"
        assert 0.0 <= payload["accuracy"] <= 1.0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["generate", "--benchmark", "nope"])


class TestCliExplain:
    def test_explain_site(self, tmp_path, capsys):
        out = tmp_path / "data"
        cli_main(
            ["generate", "--benchmark", "benchmark5", "--scale", "0.4", "--out", str(out)]
        )
        model = tmp_path / "model.npz"
        cli_main(
            ["train", "--clips", str(out / "benchmark5_training_clips.gds"), "--model", str(model)]
        )
        truth = json.loads((out / "benchmark5_truth.json").read_text())
        x, y, _, _ = truth["hotspot_cores"][0]
        assert (
            cli_main(
                [
                    "explain",
                    "--model",
                    str(model),
                    "--layout",
                    str(out / "benchmark5_testing_layout.gds"),
                    "--x",
                    str(x),
                    "--y",
                    str(y),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "verdict" in output
