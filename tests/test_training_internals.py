"""Focused tests for training internals: gating, margins, scaling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import DetectorConfig
from repro.core.training import (
    GATED_OUT,
    core_string_key,
    train_multi_kernel,
)
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSet, ClipSpec
from repro.svm.scaling import MinMaxScaler

SPEC = ClipSpec(core_side=1200, clip_side=4800)


def clip_with(rects, label=ClipLabel.HOTSPOT, origin=(0, 0)):
    window = SPEC.clip_at(*origin)
    core = SPEC.core_of(window)
    placed = [r.translated(core.x0, core.y0) for r in rects]
    return Clip.build(window, SPEC, placed, label)


def tiny_training_set():
    """Two hotspot families plus nonhotspots, all structurally distinct."""
    training = ClipSet(SPEC)
    # family A: two horizontal bars with a tight gap
    for gap in (50, 60, 70):
        training.add(
            clip_with([Rect(0, 500, 550, 580), Rect(550 + gap, 500, 1100, 580)])
        )
    # family B: vertical bar pair
    for gap in (50, 60, 70):
        training.add(
            clip_with([Rect(500, 0, 580, 550), Rect(500, 550 + gap, 580, 1100)])
        )
    # nonhotspots: same families, safe gaps, plus a plain grid
    for gap in (200, 260, 300, 240):
        training.add(
            clip_with(
                [Rect(0, 500, 500, 580), Rect(500 + gap, 500, 1100, 580)],
                ClipLabel.NON_HOTSPOT,
            )
        )
        training.add(
            clip_with(
                [Rect(500, 0, 580, 500), Rect(500, 500 + gap, 580, 1100)],
                ClipLabel.NON_HOTSPOT,
            )
        )
    for rows in (3, 4):
        training.add(
            clip_with(
                [Rect(0, i * 300, 1100, i * 300 + 90) for i in range(rows)],
                ClipLabel.NON_HOTSPOT,
            )
        )
    return training


class TestGating:
    @pytest.fixture(scope="class")
    def model(self):
        return train_multi_kernel(tiny_training_set(), DetectorConfig.ours())

    def test_alien_topology_gets_gated_out(self, model):
        alien = clip_with(
            [Rect(100, 100, 300, 1000), Rect(500, 100, 1000, 300), Rect(700, 600, 900, 1000)]
        )
        margins = model.kernel_margins([alien])
        assert np.all(margins == GATED_OUT)

    def test_known_topology_gets_judged(self, model):
        known = clip_with([Rect(0, 500, 540, 580), Rect(610, 500, 1100, 580)])
        margins = model.kernel_margins([known])
        assert (margins > GATED_OUT).any()

    def test_margins_empty_input(self, model):
        assert model.margins([]).shape == (0,)

    def test_kernel_own_hotspots_positive(self, model):
        for kernel in model.kernels:
            cluster = model.hotspot_clusters[kernel.cluster_index]
            members = [model.hotspot_clips[i] for i in cluster.members]
            margins = model.margins(members)
            assert (margins >= 0).mean() >= 0.8

    def test_core_string_key_translation_invariant(self):
        a = clip_with([Rect(100, 100, 400, 200)])
        b = clip_with([Rect(100, 100, 400, 200)], origin=(7000, 9000))
        assert core_string_key(a) == core_string_key(b)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 20, (50, 4))
        scaled = MinMaxScaler().fit_transform(x)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        assert np.allclose(scaled.min(axis=0), 0.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_constant_column(self):
        x = np.array([[1.0, 7.0], [2.0, 7.0]])
        scaled = MinMaxScaler().fit_transform(x)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_out_of_range_extrapolates(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_transform_is_affine_monotone(self, values):
        x = np.array(values)[:, None]
        scaled = MinMaxScaler().fit_transform(x)
        order = np.argsort(x[:, 0])
        assert np.all(np.diff(scaled[order, 0]) >= -1e-12)


class TestBasicVariant:
    def test_basic_judges_everything(self):
        model = train_multi_kernel(tiny_training_set(), DetectorConfig.basic())
        alien = clip_with(
            [Rect(100, 100, 300, 1000), Rect(500, 100, 1000, 300), Rect(700, 600, 900, 1000)]
        )
        margins = model.kernel_margins([alien])
        assert np.all(margins > GATED_OUT)

    def test_basic_no_upsampling(self):
        training = tiny_training_set()
        model = train_multi_kernel(training, DetectorConfig.basic())
        assert len(model.hotspot_clips) == len(training.hotspots())
