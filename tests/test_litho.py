"""Tests for the lithography-simulation substrate."""

import numpy as np
import pytest

from repro.data.patterns import generate_motif
from repro.data.synth import anchor_of
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.litho.aerial import OpticsConfig, aerial_image, gaussian_psf_fft, rasterize
from repro.litho.resist import DefectReport, ResistConfig, analyze_defects
from repro.litho.simulator import (
    LithoSimConfig,
    label_clip_by_simulation,
    simulate_clip,
)

SPEC = ClipSpec()
WINDOW = Rect(0, 0, 2000, 2000)


def motif_clip(name, hotspot, seed=0):
    rng = np.random.default_rng(seed)
    core_box = SPEC.core_of(SPEC.clip_at(0, 0))
    rects = generate_motif(name, rng, hotspot, core_box)
    ax, ay = anchor_of(rects, SPEC.core_side)
    core = Rect(ax, ay, ax + 1200, ay + 1200)
    return Clip.build(SPEC.clip_for_core(core), SPEC, rects)


class TestAerial:
    def test_rasterize_shapes(self):
        config = OpticsConfig(pixel_nm=10, mask_bias_nm=0)
        mask = rasterize([Rect(100, 100, 300, 200)], WINDOW, config)
        assert mask.shape == (200, 200)
        assert mask.sum() == pytest.approx(20 * 10, abs=8)  # 200x100nm at 10nm px

    def test_bias_expands(self):
        config0 = OpticsConfig(pixel_nm=10, mask_bias_nm=0)
        config20 = OpticsConfig(pixel_nm=10, mask_bias_nm=20)
        rect = [Rect(500, 500, 700, 600)]
        assert rasterize(rect, WINDOW, config20).sum() > rasterize(rect, WINDOW, config0).sum()

    def test_psf_normalised_at_dc(self):
        psf = gaussian_psf_fft((64, 64), 3.0)
        assert psf[0, 0] == pytest.approx(1.0)

    def test_intensity_range_and_energy(self):
        intensity = aerial_image([Rect(800, 800, 1200, 1200)], WINDOW)
        assert intensity.min() >= 0.0 and intensity.max() <= 1.0
        # blur conserves energy: mean intensity ~ mask coverage (with bias)
        config = OpticsConfig()
        mask = rasterize([Rect(800, 800, 1200, 1200)], WINDOW, config)
        assert intensity.mean() == pytest.approx(mask.mean(), rel=0.05)

    def test_large_feature_prints_solid(self):
        intensity = aerial_image([Rect(500, 500, 1500, 1500)], WINDOW)
        # centre of a big pad is fully exposed
        assert intensity[100, 100] == pytest.approx(1.0, abs=0.01)

    def test_empty_is_dark(self):
        intensity = aerial_image([], WINDOW)
        assert intensity.max() == pytest.approx(0.0, abs=1e-9)

    def test_invalid_config(self):
        from repro.errors import GeometryError

        with pytest.raises(GeometryError):
            OpticsConfig(pixel_nm=0)
        with pytest.raises(GeometryError):
            OpticsConfig(sigma_nm=0)


class TestResistPhysics:
    def wires_at_gap(self, gap):
        y = 900
        return [Rect(100, y, 950, y + 80), Rect(950 + gap, y, 1800, y + 80)]

    def analyze(self, rects):
        intensity = aerial_image(rects, WINDOW)
        return analyze_defects(intensity, rects, WINDOW, Rect(400, 400, 1600, 1600))

    def test_tight_gap_bridges(self):
        assert self.analyze(self.wires_at_gap(50)).bridge_count > 0

    def test_wide_gap_clean(self):
        assert self.analyze(self.wires_at_gap(200)).bridge_count == 0

    def test_bridge_threshold_in_dead_zone(self):
        """The simulated bridge limit falls in the 76-84 nm dead zone."""
        bridged = [g for g in range(40, 140, 4) if self.analyze(self.wires_at_gap(g)).bridge_count]
        assert bridged, "some gaps must bridge"
        assert 60 <= max(bridged) <= 100

    def test_neck_pinches(self):
        rects = [
            Rect(100, 800, 800, 1040),   # wide arm
            Rect(800, 900, 1100, 940),   # 40 nm neck
            Rect(1100, 800, 1800, 1040),  # wide arm
        ]
        report = self.analyze(rects)
        assert report.pinch_count > 0

    def test_wide_neck_clean(self):
        rects = [
            Rect(100, 800, 800, 1040),
            Rect(800, 860, 1100, 1010),  # 150 nm neck
            Rect(1100, 800, 1800, 1040),
        ]
        assert self.analyze(rects).pinch_count == 0

    def test_uniform_thin_wire_not_pinch(self):
        """Minimum-width routing is printable by design, not necking."""
        rects = [Rect(100, 950, 1800, 1030)]  # a plain 80 nm wire
        assert self.analyze(rects).pinch_count == 0

    def test_empty_clean(self):
        report = self.analyze([])
        assert not report.is_hotspot
        assert report.kind == "clean"

    def test_kind_labels(self):
        assert DefectReport(1, 0).kind == "bridge"
        assert DefectReport(0, 1).kind == "pinch"
        assert DefectReport(1, 1).kind == "bridge+pinch"
        assert DefectReport(0, 0).kind == "clean"


class TestSimulatorOnMotifs:
    @pytest.mark.parametrize("motif", ["tip2tip", "pinch", "bridge", "comb", "ushape"])
    def test_hotspot_regime_flagged(self, motif):
        flagged = sum(
            simulate_clip(motif_clip(motif, True, seed)).is_hotspot
            for seed in range(4)
        )
        assert flagged >= 3, motif

    @pytest.mark.parametrize("motif", ["tip2tip", "pinch", "bridge", "ushape"])
    def test_safe_regime_clean(self, motif):
        flagged = sum(
            simulate_clip(motif_clip(motif, False, seed)).is_hotspot
            for seed in range(4)
        )
        assert flagged <= 1, motif

    def test_labelling_oracle(self):
        clip = motif_clip("bridge", True, 1)
        assert label_clip_by_simulation(clip) is ClipLabel.HOTSPOT
        clip = motif_clip("bridge", False, 1)
        assert label_clip_by_simulation(clip) is ClipLabel.NON_HOTSPOT

    def test_corner_limitation_documented(self):
        """Diagonal-only interactions under-detect (known limitation)."""
        flagged = sum(
            simulate_clip(motif_clip("corner", True, seed)).is_hotspot
            for seed in range(6)
        )
        assert flagged < 6  # if this starts passing fully, update the docs
