"""Tests for the SVM substrate: kernels, SMO, model, scaling, iteration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NotFittedError, SvmError
from repro.svm.grid_search import IterativeConfig, train_iterative
from repro.svm.kernel import linear_kernel, make_kernel, rbf_kernel, squared_distances
from repro.svm.model import SupportVectorClassifier
from repro.svm.scaling import StandardScaler
from repro.svm.smo import solve_smo


class TestKernels:
    def test_squared_distances_exact(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = squared_distances(a, a)
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 0] == 0.0

    def test_rbf_range(self):
        k = rbf_kernel(0.5)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 3))
        gram = k(x, x)
        assert np.all(gram <= 1.0 + 1e-12) and np.all(gram > 0)
        assert np.allclose(np.diag(gram), 1.0)

    def test_rbf_positive_semidefinite(self):
        k = rbf_kernel(1.0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(12, 4))
        eigenvalues = np.linalg.eigvalsh(k(x, x))
        assert eigenvalues.min() > -1e-9

    def test_rbf_invalid_gamma(self):
        with pytest.raises(SvmError):
            rbf_kernel(0.0)

    def test_linear_kernel(self):
        k = linear_kernel()
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert k(a, b)[0, 0] == pytest.approx(11.0)

    def test_make_kernel_unknown(self):
        with pytest.raises(SvmError):
            make_kernel("poly")


class TestSmo:
    def test_separable_problem_kkt(self):
        """On a linearly separable set the solution satisfies KKT."""
        x = np.array([[0.0], [1.0], [3.0], [4.0]])
        y = np.array([-1, -1, 1, 1])
        gram = x @ x.T
        result = solve_smo(gram, y, np.full(4, 10.0))
        assert result.converged
        # equality constraint
        assert abs(float(result.alpha @ y)) < 1e-9
        # box constraint
        assert np.all(result.alpha >= -1e-12)
        assert np.all(result.alpha <= 10.0 + 1e-12)
        # all training points classified correctly
        decision = gram @ (result.alpha * y) + result.bias
        assert np.all(np.sign(decision) == y)

    def test_objective_negative_for_nontrivial(self):
        x = np.array([[0.0], [1.0], [3.0], [4.0]])
        y = np.array([-1, -1, 1, 1])
        result = solve_smo(x @ x.T, y, np.full(4, 10.0))
        assert result.objective < 0

    def test_single_class_rejected(self):
        with pytest.raises(SvmError):
            solve_smo(np.eye(3), np.array([1, 1, 1]), np.full(3, 1.0))

    def test_bad_labels_rejected(self):
        with pytest.raises(SvmError):
            solve_smo(np.eye(2), np.array([0, 1]), np.full(2, 1.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SvmError):
            solve_smo(np.eye(3), np.array([1, -1]), np.full(2, 1.0))

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(SvmError):
            solve_smo(np.eye(2), np.array([1, -1]), np.array([1.0, 0.0]))

    def test_per_sample_bounds_respected(self):
        x = np.array([[0.0], [0.5], [0.6], [4.0]])
        y = np.array([-1, -1, 1, 1])
        bounds = np.array([5.0, 5.0, 0.25, 5.0])
        result = solve_smo(x @ x.T + np.eye(4), y, bounds)
        assert result.alpha[2] <= 0.25 + 1e-9

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_random_separable_converges(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        x = np.vstack([rng.normal(-3, 0.5, (n, 2)), rng.normal(3, 0.5, (n, 2))])
        y = np.array([-1] * n + [1] * n)
        gram = np.exp(-0.5 * squared_distances(x, x))
        result = solve_smo(gram, y, np.full(2 * n, 100.0))
        decision = gram @ (result.alpha * y) + result.bias
        assert (np.sign(decision) == y).mean() == 1.0


class TestScaler:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, (200, 4))
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1, atol=1e-9)

    def test_constant_column_safe(self):
        x = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        scaled = StandardScaler().fit_transform(x)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_column_mismatch_raises(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(SvmError):
            scaler.transform(np.zeros((1, 3)))


class TestClassifier:
    def blobs(self, seed=0, n=60):
        rng = np.random.default_rng(seed)
        x = np.vstack([rng.normal(-2, 0.8, (n, 3)), rng.normal(2, 0.8, (n, 3))])
        y = np.array([-1] * n + [1] * n)
        return x, y

    def test_fit_predict_blobs(self):
        x, y = self.blobs()
        model = SupportVectorClassifier(C=10, gamma=0.2).fit(x, y)
        assert model.score(x, y) >= 0.98

    def test_xor_needs_rbf(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, (300, 2))
        y = np.where(x[:, 0] * x[:, 1] > 0, 1, -1)
        model = SupportVectorClassifier(C=100, gamma=5.0).fit(x, y)
        assert model.score(x, y) >= 0.97

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SupportVectorClassifier().predict(np.zeros((1, 2)))

    def test_invalid_c(self):
        with pytest.raises(SvmError):
            SupportVectorClassifier(C=-1.0)

    def test_decision_threshold_monotone(self):
        x, y = self.blobs()
        model = SupportVectorClassifier(C=10, gamma=0.2).fit(x, y)
        strict = (model.predict(x, threshold=1.0) == 1).sum()
        loose = (model.predict(x, threshold=-1.0) == 1).sum()
        assert strict <= loose

    def test_class_weight_shifts_boundary(self):
        rng = np.random.default_rng(5)
        # overlapping blobs; upweighting +1 should increase +1 predictions
        x = np.vstack([rng.normal(-0.5, 1.0, (80, 2)), rng.normal(0.5, 1.0, (20, 2))])
        y = np.array([-1] * 80 + [1] * 20)
        plain = SupportVectorClassifier(C=1.0, gamma=0.5).fit(x, y)
        weighted = SupportVectorClassifier(
            C=1.0, gamma=0.5, class_weight={1: 10.0}
        ).fit(x, y)
        assert (weighted.predict(x) == 1).sum() >= (plain.predict(x) == 1).sum()

    def test_far_field_floor_pushes_unknown_negative(self):
        x, y = self.blobs()
        model = SupportVectorClassifier(C=10, gamma=0.5, far_field_floor=0.1).fit(x, y)
        far = np.full((1, 3), 100.0)
        assert model.decision_function(far)[0] == pytest.approx(-1.0)

    def test_support_similarity_range(self):
        x, y = self.blobs()
        model = SupportVectorClassifier(C=10, gamma=0.5).fit(x, y)
        sims = model.support_similarity(x)
        assert np.all(sims > 0) and np.all(sims <= 1.0 + 1e-12)
        assert model.support_similarity(np.full((1, 3), 50.0))[0] < 1e-6

    def test_single_row_decision(self):
        x, y = self.blobs()
        model = SupportVectorClassifier(C=10, gamma=0.2).fit(x, y)
        value = model.decision_function(x[0])
        assert np.isscalar(value) or value.ndim == 0

    def test_misaligned_labels_rejected(self):
        with pytest.raises(SvmError):
            SupportVectorClassifier().fit(np.zeros((4, 2)), np.array([1, -1]))


class TestIterativeTraining:
    def test_doubling_schedule(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1, 1, (200, 2))
        y = np.where(x[:, 0] * x[:, 1] > 0, 1, -1)
        result = train_iterative(
            x, y, IterativeConfig(initial_c=1.0, initial_gamma=0.01, max_rounds=10)
        )
        for i, r in enumerate(result.history):
            assert r.c_value == pytest.approx(1.0 * 2**i)
            assert r.gamma == pytest.approx(0.01 * 2**i)

    def test_stops_at_target(self):
        rng = np.random.default_rng(8)
        n = 40
        x = np.vstack([rng.normal(-3, 0.3, (n, 2)), rng.normal(3, 0.3, (n, 2))])
        y = np.array([-1] * n + [1] * n)
        result = train_iterative(
            x, y, IterativeConfig(initial_c=1000.0, initial_gamma=0.01, max_rounds=8)
        )
        assert result.rounds == 1  # separable at the paper's initial params
        assert result.final_accuracy >= 0.9

    def test_keeps_best_round(self):
        rng = np.random.default_rng(9)
        x = rng.uniform(-1, 1, (120, 2))
        y = np.where(x[:, 0] * x[:, 1] > 0, 1, -1)
        result = train_iterative(
            x,
            y,
            IterativeConfig(
                initial_c=0.1, initial_gamma=0.001, target_accuracy=0.999, max_rounds=6
            ),
        )
        best_acc = max(r.train_accuracy for r in result.history)
        assert result.model.score(x, y) == pytest.approx(best_acc, abs=1e-9)

    def test_config_validation(self):
        with pytest.raises(SvmError):
            IterativeConfig(target_accuracy=0.0)
        with pytest.raises(SvmError):
            IterativeConfig(max_rounds=0)

    def test_paper_defaults(self):
        config = IterativeConfig()
        assert config.initial_c == 1000.0
        assert config.initial_gamma == 0.01
        assert config.target_accuracy == 0.90
