"""Churn tolerance of the replicated remote cache tier.

The warm tier must survive its own membership being unreliable:

- a node failing ``NODE_FAILURE_LIMIT`` times in a row is skipped, but
  **never blacklisted forever** — the counter-based half-open probe
  re-admits it the moment it answers again, and its hint log re-warms
  it;
- every blob lives on ``REPLICATION_FACTOR`` ring nodes, ``get`` falls
  through the replica set, and a deep hit read-repairs the replicas
  that missed;
- batch RPCs carry a whole shard's gets/puts in one round trip per
  node;
- none of it may ever change scan output: a fleet scan through a tier
  with a dead member stays bit-identical to the quiet single-node run.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cache import HotspotCache, MemoryCacheStore, wrap_blob
from repro.fleet import (
    CacheServer,
    FleetClient,
    FleetHTTPServer,
    FleetOptions,
    RemoteCacheStore,
    pack_batch,
    unpack_batch,
)
from repro.fleet.remote_cache import (
    NODE_FAILURE_LIMIT,
    PROBE_AFTER_SKIPS,
)
from repro.fleet.protocol import wait_until
from repro.resilience import faults
from repro.resilience.drill import DrillSchedule

from tests.test_fleet import (  # noqa: F401 — fixtures re-exported
    assert_identical,
    detached,
    fitted,
    run_fleet,
    signature,
)


@pytest.fixture()
def cache_node():
    app = CacheServer(store=MemoryCacheStore())
    with FleetHTTPServer(app) as server:
        yield app, server.url


@pytest.fixture()
def two_nodes():
    apps = [CacheServer(store=MemoryCacheStore()) for _ in range(2)]
    with FleetHTTPServer(apps[0]) as first, FleetHTTPServer(apps[1]) as second:
        yield (apps[0], first.url), (apps[1], second.url)


BLOB = wrap_blob(b"some cached payload")


# ----------------------------------------------------------------------
# half-open recovery: down is a state, not a sentence
# ----------------------------------------------------------------------
class TestHalfOpenRecovery:
    def test_node_failing_three_times_then_healed_serves_again(self, cache_node):
        app, url = cache_node
        store = RemoteCacheStore([url], timeout=2.0)
        with faults.active(f"seed=1;fleet.cache=error:1.0!{NODE_FAILURE_LIMIT}"):
            store.put("margins", "fp", "key", BLOB)  # fails -> hinted
            assert store.get("margins", "fp", "key") is None
            assert store.get("margins", "fp", "key") is None
        health = store.node_health()[url]
        assert health["state"] == "down"
        assert health["failures"] == NODE_FAILURE_LIMIT
        assert health["hints_pending"] == 1

        # While down, uses are skipped without ever reaching the server.
        for _ in range(PROBE_AFTER_SKIPS):
            assert store.get("margins", "fp", "key") is None
        assert app.gets == 0

        # The next use is the recovery probe.  It answers (a miss — the
        # put never landed), which re-opens the node and flushes the
        # hinted put back to it; traffic flows again.
        assert store.get("margins", "fp", "key") is None
        assert store.node_health()[url]["state"] == "up"
        assert store.probes == 1
        assert store.hints_flushed == 1
        assert store.get("margins", "fp", "key") == BLOB
        assert store.hits == 1

    def test_failed_probe_rearms_the_skip_cycle(self, cache_node):
        app, url = cache_node
        store = RemoteCacheStore([url], timeout=2.0)
        limit = NODE_FAILURE_LIMIT + 1  # 3 to go down + 1 failed probe
        with faults.active(f"seed=1;fleet.cache=error:1.0!{limit}"):
            for _ in range(NODE_FAILURE_LIMIT):
                assert store.get("margins", "fp", "key") is None
            assert store.node_health()[url]["state"] == "down"
            for _ in range(PROBE_AFTER_SKIPS):
                store.get("margins", "fp", "key")
            # Probe fires into the still-failing node: re-armed, down.
            assert store.get("margins", "fp", "key") is None
        assert store.probes == 1
        assert store.node_health()[url]["state"] == "down"
        # A full skip cycle later the *second* probe finds it healed.
        for _ in range(PROBE_AFTER_SKIPS + 1):
            store.get("margins", "fp", "key")
        assert store.probes == 2
        assert store.node_health()[url]["state"] == "up"

    def test_all_down_tier_turns_healthy_to_fire_the_probe(self):
        store = RemoteCacheStore(["http://127.0.0.1:9"], timeout=0.2)
        for _ in range(NODE_FAILURE_LIMIT):
            store.get("margins", "fp", "key")
        assert not store.healthy()
        # healthy() itself counts the skipped tier uses; once the lone
        # node is probe-due the tier re-admits itself.
        states = [store.healthy() for _ in range(PROBE_AFTER_SKIPS)]
        assert states[-1] is True


# ----------------------------------------------------------------------
# replication + read-repair
# ----------------------------------------------------------------------
class TestReplication:
    def test_put_writes_to_both_replicas(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        store.put("margins", "fp", "key", BLOB)
        assert app0.puts == 1 and app1.puts == 1
        assert store.puts == 2

    def test_get_falls_through_to_the_surviving_replica(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        store.put("margins", "fp", "key", BLOB)
        primary = store.ring.replicas_for("margins/fp/key", 2)[0]
        primary_app = app0 if primary == url0 else app1
        primary_app.store._blobs.clear()  # the primary lost everything
        assert store.get("margins", "fp", "key") == BLOB

    def test_deep_hit_read_repairs_the_primary(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        store.put("margins", "fp", "key", BLOB)
        primary = store.ring.replicas_for("margins/fp/key", 2)[0]
        primary_app = app0 if primary == url0 else app1
        primary_app.store._blobs.clear()
        assert store.get("margins", "fp", "key") == BLOB
        assert store.repairs == 1
        # The hole is healed: the primary answers by itself again.
        assert len(primary_app.store) == 1
        assert store.get("margins", "fp", "key") == BLOB

    def test_unreachable_replica_gets_a_hint_not_a_repair(self, cache_node):
        app, url = cache_node
        dead = "http://127.0.0.1:9"
        store = RemoteCacheStore([url, dead], timeout=0.2)
        keys = [f"k{i}" for i in range(12)]
        for key in keys:
            store.put("margins", "fp", key, BLOB)
        # Some puts hit the dead node first: hinted, not lost.
        assert store.node_health()[dead]["state"] in ("down", "half_open")
        assert store.hints_recorded > 0
        for key in keys:
            assert store.get("margins", "fp", key) == BLOB


# ----------------------------------------------------------------------
# batch protocol: one RPC per node per shard
# ----------------------------------------------------------------------
class TestBatchProtocol:
    def test_framing_round_trips(self):
        document = {"gets": [["margins", "fp", "k"]], "puts": []}
        raw = pack_batch(document, [BLOB, b"x"])
        parsed = unpack_batch(raw)
        assert parsed is not None
        decoded, blobs = parsed
        assert decoded["gets"] == document["gets"]
        assert blobs == [BLOB, b"x"]
        assert unpack_batch(raw[:-1]) is None  # truncated
        assert unpack_batch(b"junk" + raw) is None  # bad magic

    def test_put_many_get_many_round_trip_counts_rpcs(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        entries = [
            ("margins", "fp", f"k{i}", wrap_blob(bytes([i]) * 8))
            for i in range(16)
        ]
        store.put_many(entries)
        # RF=2 on a 2-node ring: every node holds every key, and each
        # node saw exactly ONE batch RPC for all 16 puts.
        assert store.batch_rpcs == 2
        assert app0.puts == app1.puts == 16
        assert app0.batches == app1.batches == 1

        found = store.get_many([(k, f, key) for (k, f, key, _) in entries])
        assert len(found) == 16
        assert found[("margins", "fp", "k3")] == entries[3][3]
        # The multi-get grouped by primary replica: at most one more
        # batch RPC per node.
        assert store.batch_rpcs <= 4
        assert app0.batches + app1.batches == store.batch_rpcs

    def test_get_many_falls_through_and_read_repairs_in_batch(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        entries = [
            ("margins", "fp", f"k{i}", wrap_blob(bytes([i]) * 8))
            for i in range(16)
        ]
        store.put_many(entries)
        app0.store._blobs.clear()  # node 0 lost its whole store
        found = store.get_many([(k, f, key) for (k, f, key, _) in entries])
        assert len(found) == 16
        # Every key whose primary was the wiped node was repaired back.
        assert store.repairs > 0
        assert len(app0.store) == store.repairs

    def test_batch_put_rejects_corrupt_blobs_individually(self, cache_node):
        app, url = cache_node
        store = RemoteCacheStore([url])
        rotten = BLOB[:-1] + bytes([BLOB[-1] ^ 0xFF])
        store.put_many(
            [
                ("margins", "fp", "good", BLOB),
                ("margins", "fp", "bad", rotten),
            ]
        )
        assert app.puts == 1
        assert app.rejected_corrupt == 1
        assert store.get("margins", "fp", "good") == BLOB
        assert store.get("margins", "fp", "bad") is None


# ----------------------------------------------------------------------
# runtime membership change
# ----------------------------------------------------------------------
class TestMembershipChange:
    def test_joined_node_takes_new_writes(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0])
        keys = [f"k{i}" for i in range(24)]
        for key in keys:
            store.put("margins", "fp", key, BLOB)
        assert app0.puts == 24

        assert store.add_node(url1)
        assert not store.add_node(url1)  # idempotent
        for key in keys:
            store.put("margins", "fp", key, BLOB)
        # RF=2 on two nodes: the joiner now holds every key too.
        assert app1.puts == 24
        for key in keys:
            assert store.get("margins", "fp", key) == BLOB

    def test_set_nodes_keeps_down_state_of_retained_nodes(self, cache_node):
        app, url = cache_node
        dead = "http://127.0.0.1:9"
        store = RemoteCacheStore([dead], timeout=0.2)
        for _ in range(NODE_FAILURE_LIMIT):
            store.get("margins", "fp", "key")
        assert store.node_health()[dead]["state"] == "down"
        assert store.set_nodes([dead, url])
        # The dead node stayed down across the topology change; the new
        # node serves immediately.
        assert store.node_health()[dead]["state"] == "down"
        store.put("margins", "fp", "key", BLOB)
        assert app.puts == 1


# ----------------------------------------------------------------------
# HotspotCache plumbing: prefetch, write-behind, corrupt rejection
# ----------------------------------------------------------------------
class TestHotspotCachePlumbing:
    def test_write_behind_flush_and_prefetch(self, two_nodes):
        (app0, url0), (app1, url1) = two_nodes
        store = RemoteCacheStore([url0, url1])
        cache = HotspotCache(stores=[store], write_behind=True)
        for i in range(6):
            cache.put_margins("fp", f"key{i}", np.array([float(i)]))
        assert app0.puts + app1.puts == 0  # buffered, nothing on the wire
        cache.flush()
        assert app0.puts + app1.puts == 12  # 6 keys x RF=2
        assert store.batch_rpcs == 2

        cache.clear_memory()
        warmed = cache.prefetch("margins", "fp", [f"key{i}" for i in range(8)])
        assert warmed == 6
        rpcs_after_prefetch = store.rpcs
        # Hits serve from memory; the two prefetched-absent keys are
        # remembered and do not pay one RPC each.
        assert np.array_equal(cache.get_margins("fp", "key3"), [3.0])
        assert cache.get_margins("fp", "key6") is None
        assert cache.get_margins("fp", "key7") is None
        assert store.rpcs == rpcs_after_prefetch

    def test_corrupt_serving_node_is_a_counted_miss(self, cache_node):
        app, url = cache_node
        store = RemoteCacheStore([url])
        cache = HotspotCache(stores=[store])
        cache.put_margins("fp", "key", np.array([1.0, 2.0]))
        cache.clear_memory()
        with faults.active("seed=7;fleet.cache_server=corrupt:1.0!1"):
            assert cache.get_margins("fp", "key") is None
        stats = cache.stats_dict()
        assert stats["remote_corrupt"] == 1
        # The stored blob is intact — only the wire was rotten.
        cache.clear_memory()
        assert np.array_equal(cache.get_margins("fp", "key"), [1.0, 2.0])

    def test_stats_dict_carries_tier_and_node_health(self, cache_node):
        app, url = cache_node
        store = RemoteCacheStore([url])
        cache = HotspotCache(stores=[store])
        cache.put_margins("fp", "key", np.array([1.0]))
        cache.clear_memory()
        cache.get_margins("fp", "key")
        stats = cache.stats_dict()
        assert stats["remote_store_gets"] >= 1
        assert stats["remote_store_hits"] >= 1
        assert stats["remote_rpcs"] >= 2
        assert stats["remote_nodes"][url]["state"] == "up"


# ----------------------------------------------------------------------
# the fleet invariant holds with a dead replica in the ring
# ----------------------------------------------------------------------
class TestFleetThroughChurningTier:
    def test_scan_with_dead_replica_is_bit_identical_and_uncorrupted(
        self, detached, small_benchmark, two_nodes
    ):
        (app0, url0), (app1, url1) = two_nodes
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        dead = "http://127.0.0.1:9"
        options = FleetOptions(cache_urls=[url0, dead])
        coordinator, workers, scan = run_fleet(
            detached, layout, worker_count=2, options=options
        )
        fleet = signature(detached, detached.detect(layout, scan=scan))
        assert_identical(baseline, fleet)

        status = coordinator.status()
        cache = status["cache"]
        assert cache["remote_corrupt"] == 0
        assert cache["nodes"][dead]["state"] in ("down", "half_open", "up")
        # The live node took writes despite its dead ring neighbour.
        assert app0.puts > 0

    def test_warm_rescan_hits_the_surviving_tier(
        self, detached, small_benchmark, two_nodes
    ):
        (app0, url0), (app1, url1) = two_nodes
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))
        options = FleetOptions(cache_urls=[url0, url1])

        coordinator, _, scan = run_fleet(
            detached, layout, worker_count=2, options=options
        )
        assert_identical(
            baseline, signature(detached, detached.detect(layout, scan=scan))
        )
        cold = coordinator.status()["cache"]

        # Second scan over the warmed tier — with one RF node dead.
        assert len(app1.store) > 0  # RF=2 warmed both nodes
        warm_options = FleetOptions(cache_urls=[url0, "http://127.0.0.1:9"])
        coordinator2, _, scan2 = run_fleet(
            detached, layout, worker_count=2, options=warm_options
        )
        assert_identical(
            baseline, signature(detached, detached.detect(layout, scan=scan2))
        )
        warm = coordinator2.status()["cache"]
        assert warm["remote_corrupt"] == 0
        assert warm["remote_hits"] > 0
        assert warm["hit_rate"] > 0.0


# ----------------------------------------------------------------------
# a stopped-then-continued real cache node is re-admitted (acceptance)
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.mark.skipif(os.name != "posix", reason="needs SIGSTOP/SIGCONT")
def test_stopped_then_continued_cache_node_is_readmitted(tmp_path):
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet-cache", "--port", str(port)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        def _up() -> bool:
            try:
                return FleetClient(url, timeout=1.0).get_json("/healthz")[0] == 200
            except Exception:
                return False

        assert wait_until(_up, timeout_s=30.0, interval_s=0.1)
        store = RemoteCacheStore([url], timeout=0.5)
        store.put("margins", "fp", "key", BLOB)
        assert store.get("margins", "fp", "key") == BLOB

        os.kill(proc.pid, signal.SIGSTOP)
        for _ in range(NODE_FAILURE_LIMIT):
            assert store.get("margins", "fp", "key") is None
        assert store.node_health()[url]["state"] == "down"

        os.kill(proc.pid, signal.SIGCONT)
        # Four skipped uses arm the probe; the fifth IS the probe, and
        # the resumed node answers it with the original blob.
        results = [
            store.get("margins", "fp", "key")
            for _ in range(PROBE_AFTER_SKIPS + 1)
        ]
        assert results[:PROBE_AFTER_SKIPS] == [None] * PROBE_AFTER_SKIPS
        assert results[-1] == BLOB
        assert store.probes == 1
        assert store.node_health()[url]["state"] == "up"
    finally:
        if proc.poll() is None:
            try:
                os.kill(proc.pid, signal.SIGCONT)
            except OSError:
                pass
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


# ----------------------------------------------------------------------
# drill DSL: the new verbs and roles parse (the drill itself runs in CI)
# ----------------------------------------------------------------------
class TestDrillDsl:
    def test_cache_verbs_parse(self):
        schedule = DrillSchedule.parse(
            "seed 7\n"
            "at 1.0 kill cache-1\n"
            "at 2.0 stop cache-0; at 4.0 cont cache-0\n"
            "at 5.0 add cache-2\n"
            "at 0 faults worker-0 fleet.cache=error:0.5!2\n"
        )
        assert schedule.seed == 7
        assert [a.verb for a in schedule.actions] == [
            "faults", "kill", "stop", "cont", "add",
        ]
        assert schedule.spawn_faults("worker-0") == (
            "seed=7;fleet.cache=error:0.5!2"
        )

    def test_serve_roles_parse(self):
        schedule = DrillSchedule.parse(
            "at 0.5 kill replica-0\nat 1.0 stop frontend\nat 2 cont frontend"
        )
        assert [a.target for a in schedule.actions] == [
            "replica-0", "frontend", "frontend",
        ]

    def test_add_only_targets_cache_nodes(self):
        from repro.errors import InputError

        with pytest.raises(InputError):
            DrillSchedule.parse("at 1 add worker-0")
