"""Tests for density grids, grid orientations, and spacing measurements."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.grid import (
    all_orientation_grids,
    density_grid,
    orient_grid,
    window_density,
)
from repro.geometry.measure import (
    corner_count,
    min_external_distance,
    min_internal_distance,
    min_rect_spacing,
    touch_point_count,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

WINDOW = Rect(0, 0, 12, 12)


class TestDensityGrid:
    def test_full_coverage(self):
        grid = density_grid([WINDOW], WINDOW, 3)
        assert np.allclose(grid, 1.0)

    def test_empty(self):
        grid = density_grid([], WINDOW, 3)
        assert np.allclose(grid, 0.0)

    def test_half_coverage_exact(self):
        grid = density_grid([Rect(0, 0, 12, 6)], WINDOW, 2)
        assert np.allclose(grid, [[1.0, 1.0], [0.0, 0.0]])

    def test_partial_cell(self):
        # one quarter of the single cell covered
        grid = density_grid([Rect(0, 0, 6, 6)], WINDOW, 1)
        assert grid[0, 0] == pytest.approx(0.25)

    def test_row_zero_is_bottom(self):
        grid = density_grid([Rect(0, 0, 12, 4)], WINDOW, 3)
        assert grid[0].sum() > 0
        assert grid[2].sum() == 0

    def test_out_of_window_clipped(self):
        grid = density_grid([Rect(-100, -100, 6, 6)], WINDOW, 2)
        assert grid[0, 0] == pytest.approx(1.0)
        assert grid[1, 1] == 0.0

    def test_indivisible_resolution_raises(self):
        with pytest.raises(GeometryError):
            density_grid([], WINDOW, 5)

    def test_zero_resolution_raises(self):
        with pytest.raises(GeometryError):
            density_grid([], WINDOW, 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10), st.integers(1, 4), st.integers(1, 4)),
            max_size=5,
        )
    )
    def test_grid_mean_equals_window_density(self, raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(12, x0 + w), min(12, y0 + h))
            if r and not any(r.overlaps(o) for o in rects):
                rects.append(r)
        grid = density_grid(rects, WINDOW, 4)
        assert grid.mean() == pytest.approx(window_density(rects, WINDOW))


class TestOrientGrid:
    def setup_method(self):
        self.grid = np.arange(9, dtype=float).reshape(3, 3)

    def test_r0_identity(self):
        assert np.array_equal(orient_grid(self.grid, "R0"), self.grid)

    def test_r180_is_double_r90(self):
        once = orient_grid(orient_grid(self.grid, "R90"), "R90")
        assert np.array_equal(once, orient_grid(self.grid, "R180"))

    def test_mirrors_are_involutions(self):
        for name in ("MX", "MY"):
            twice = orient_grid(orient_grid(self.grid, name), name)
            assert np.array_equal(twice, self.grid)

    def test_all_orientations_count(self):
        grids = all_orientation_grids(self.grid)
        assert len(grids) == 8

    def test_orientations_preserve_multiset(self):
        for oriented in all_orientation_grids(self.grid).values():
            assert sorted(oriented.ravel()) == sorted(self.grid.ravel())

    def test_unknown_orientation_raises(self):
        with pytest.raises(GeometryError):
            orient_grid(self.grid, "R45")

    def test_non_square_raises(self):
        with pytest.raises(GeometryError):
            orient_grid(np.zeros((2, 3)), "R90")

    def test_matches_geometric_transform(self):
        """Grid orientation must agree with geometric rect orientation."""
        from repro.geometry.transform import Orientation, transform_rects_in_window

        window = Rect(0, 0, 12, 12)
        rects = [Rect(0, 0, 4, 2), Rect(6, 8, 10, 12)]
        base = density_grid(rects, window, 6)
        for orientation in Orientation:
            moved = transform_rects_in_window(rects, window, orientation)
            direct = density_grid(moved, window, 6)
            via_grid = orient_grid(base, orientation.value)
            assert np.allclose(direct, via_grid), orientation


class TestMeasure:
    def test_min_internal_is_polygon_width(self):
        poly = Polygon.from_rect(Rect(0, 0, 10, 3))
        assert min_internal_distance([poly]) == 3

    def test_min_external_between_polygons(self):
        a = Polygon.from_rect(Rect(0, 0, 4, 4))
        b = Polygon.from_rect(Rect(7, 0, 10, 4))
        assert min_external_distance([a, b]) == 3

    def test_u_shape_notch_spacing(self):
        u = Polygon(
            [(0, 0), (10, 0), (10, 8), (7, 8), (7, 3), (3, 3), (3, 8), (0, 8)]
        )
        # the notch faces itself across 4 units
        assert min_external_distance([u]) == 4

    def test_no_external_for_single_rect(self):
        assert min_external_distance([Polygon.from_rect(Rect(0, 0, 4, 4))]) is None

    def test_touch_points(self):
        a = Polygon.from_rect(Rect(0, 0, 4, 4))
        b = Polygon.from_rect(Rect(4, 4, 8, 8))
        assert touch_point_count([a, b]) == 1

    def test_corner_count(self):
        l_shape = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert corner_count([l_shape]) == 6
        assert corner_count([l_shape, Polygon.from_rect(Rect(10, 10, 12, 12))]) == 10

    def test_min_rect_spacing_facing(self):
        rects = [Rect(0, 0, 4, 4), Rect(6, 0, 10, 4), Rect(0, 9, 4, 12)]
        assert min_rect_spacing(rects) == 2

    def test_min_rect_spacing_ignores_diagonal(self):
        rects = [Rect(0, 0, 4, 4), Rect(5, 5, 8, 8)]
        assert min_rect_spacing(rects) is None
