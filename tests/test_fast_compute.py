"""Property tests for the fast compute mode.

Three contracts pin the fast path to the exact oracle:

1. **Batch invariance** — the blocked-GEMM margin evaluator pads every
   batch to fixed :data:`FAST_BLOCK`-row operands, so BLAS sees the same
   shapes no matter how callers partition the rows.  Fast margins must
   therefore be *bit-identical* across batch sizes, split points and row
   order — this is what makes fast-mode scans reproducible across
   thread/process/fleet sharding.
2. **Compaction** — dropping exactly-zero dual rows must not move a
   single bit of the fast decision function, and the compacted state
   must stay within the documented ulp bound of the exact oracle.
3. **Vectorized geometry** — the numpy sweeps (tilings, constraint
   graphs, density grids, corner/touch counts, full extraction) are
   integer geometry and must equal the scalar implementations *exactly*,
   not within a tolerance.  This equality is what lets exact and fast
   runs share one feature-cache namespace.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FeatureError, GeometryError
from repro.features.nontopo import (
    corner_and_touch_counts as corner_and_touch_counts_scalar,
    extract_nontopo_features,
)
from repro.features.vector import FeatureConfig
from repro.cache.keys import feature_fingerprint
from repro.geometry.grid import density_grid, density_grid_fast
from repro.geometry.rect import Rect
from repro.mtcg import fastscan
from repro.mtcg.features import extract_topological_features
from repro.mtcg.graph import build_mtcg
from repro.mtcg.tiles import horizontal_tiling, vertical_tiling
from repro.svm.fastpath import (
    FAST_BLOCK,
    MAX_ULP_DRIFT,
    FastKernelState,
    decision_scale,
    margin_drift_ulps,
    ulp_diff,
)
from repro.svm.model import SupportVectorClassifier

WINDOW = Rect(0, 0, 24, 24)


def rect_sets(max_rects=6, bound=24, max_side=8):
    """Non-overlapping rect lists inside ``bound`` (tiling inputs)."""

    def build(raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(bound, x0 + w), min(bound, y0 + h))
            if r and not any(r.overlaps(o) for o in rects):
                rects.append(r)
        return rects

    return st.lists(
        st.tuples(
            st.integers(0, bound - 2),
            st.integers(0, bound - 2),
            st.integers(1, max_side),
            st.integers(1, max_side),
        ),
        max_size=max_rects,
    ).map(build)


def raw_rect_sets(max_rects=8, bound=24, max_side=10):
    """Arbitrary (possibly overlapping, possibly degenerate-input) rects.

    Density accumulation is defined for any rect list, so the fast grid
    must match the scalar one even on inputs tilings would reject.
    """

    def build(raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(bound, x0 + w), min(bound, y0 + h))
            if r:
                rects.append(r)
        return rects

    return st.lists(
        st.tuples(
            st.integers(0, bound - 2),
            st.integers(0, bound - 2),
            st.integers(1, max_side),
            st.integers(1, max_side),
        ),
        max_size=max_rects,
    ).map(build)


def fitted_classifier(seed, rows=24, dims=3, far_field_floor=0.0):
    """A small deterministic RBF model fit on seeded random data."""
    rng = np.random.RandomState(seed)
    matrix = rng.uniform(0.0, 10.0, size=(rows, dims))
    labels = np.where(rng.rand(rows) < 0.5, 1, -1)
    labels[0], labels[1] = 1, -1  # both classes always present
    clf = SupportVectorClassifier(
        C=10.0, gamma=0.1, far_field_floor=far_field_floor
    )
    clf.fit(matrix, labels)
    return clf, rng


class TestUlpHelpers:
    def test_adjacent_doubles_are_one_ulp_apart(self):
        assert ulp_diff(1.0, np.nextafter(1.0, 2.0)) == 1
        assert ulp_diff(np.nextafter(1.0, 0.0), 1.0) == 1

    def test_signed_zeros_coincide(self):
        assert ulp_diff(0.0, -0.0) == 0
        assert ulp_diff(-0.0, 0.0) == 0

    def test_crossing_zero_counts_both_sides(self):
        tiny = 5e-324  # smallest subnormal
        assert ulp_diff(-tiny, tiny) == 2

    def test_identical_values_are_zero_ulps(self):
        values = np.array([-3.5, 0.0, 1e300, -1e-300])
        assert np.all(ulp_diff(values, values.copy()) == 0)

    def test_drift_of_empty_margins_is_zero(self):
        assert margin_drift_ulps(np.array([]), np.array([]), 8.0) == 0.0

    def test_drift_is_normalized_at_decision_scale(self):
        scale = 8.0
        exact = np.array([1.0])
        fast = exact + 4.0 * np.spacing(scale)
        assert margin_drift_ulps(exact, fast, scale) == pytest.approx(4.0)

    def test_decision_scale_floors_at_one(self):
        assert decision_scale(np.array([0.25, -0.25]), 0.1) == 1.0
        assert decision_scale(np.array([4.0, -3.0]), -1.0) == 8.0


class TestBlockedMarginInvariance:
    """Fast margins must not depend on how callers batch the rows."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        n_samples=st.integers(1, 3 * FAST_BLOCK // 2),
    )
    @settings(max_examples=15, deadline=None)
    def test_per_row_equals_batched(self, seed, n_samples):
        clf, rng = fitted_classifier(seed)
        samples = rng.uniform(-2.0, 12.0, size=(n_samples, 3))
        state = FastKernelState.from_classifier(clf)

        full_values, full_similarity = state.evaluate(samples)
        row_values = np.concatenate(
            [state.evaluate(samples[i : i + 1])[0] for i in range(n_samples)]
        )
        row_similarity = np.concatenate(
            [state.evaluate(samples[i : i + 1])[1] for i in range(n_samples)]
        )
        assert np.array_equal(full_values, row_values)
        assert np.array_equal(full_similarity, row_similarity)

    @given(
        seed=st.integers(0, 2**32 - 1),
        cuts=st.lists(st.integers(1, 199), max_size=6, unique=True),
    )
    @settings(max_examples=15, deadline=None)
    def test_partition_invariance(self, seed, cuts):
        clf, rng = fitted_classifier(seed)
        samples = rng.uniform(-2.0, 12.0, size=(200, 3))
        state = FastKernelState.from_classifier(clf)

        full = state.decision_function(samples)
        bounds = [0] + sorted(cuts) + [200]
        chunked = np.concatenate(
            [
                state.decision_function(samples[lo:hi])
                for lo, hi in zip(bounds, bounds[1:])
            ]
        )
        assert np.array_equal(full, chunked)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_row_order_invariance(self, seed):
        clf, rng = fitted_classifier(seed)
        samples = rng.uniform(-2.0, 12.0, size=(FAST_BLOCK + 7, 3))
        state = FastKernelState.from_classifier(clf)

        full = state.decision_function(samples)
        perm = rng.permutation(samples.shape[0])
        permuted = state.decision_function(samples[perm])
        restored = np.empty_like(permuted)
        restored[perm] = permuted
        assert np.array_equal(full, restored)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_classifier_fast_entrypoints_match_state(self, seed):
        clf, rng = fitted_classifier(seed, far_field_floor=0.5)
        samples = rng.uniform(-2.0, 12.0, size=(33, 3))
        state = clf.fast_state()
        values, similarity = state.evaluate(samples)
        assert np.array_equal(clf.decision_function_fast(samples), values)
        fast_values, fast_similarity = clf.decision_and_similarity_fast(samples)
        assert np.array_equal(fast_values, values)
        assert np.array_equal(fast_similarity, similarity)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_fast_drift_from_exact_is_bounded(self, seed):
        clf, rng = fitted_classifier(seed, far_field_floor=0.25)
        samples = rng.uniform(-2.0, 12.0, size=(64, 3))
        state = clf.fast_state()
        exact = clf.decision_function(samples)
        fast = state.decision_function(samples)
        assert margin_drift_ulps(exact, fast, state.scale) <= MAX_ULP_DRIFT


class TestSupportVectorCompaction:
    """Zero-dual rows may be dropped without moving a single bit."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        pad=st.integers(1, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_padded_zero_rows_are_dropped_bit_exactly(self, seed, pad):
        from dataclasses import replace

        clf, rng = fitted_classifier(seed)
        extra = rng.uniform(0.0, 10.0, size=(pad, clf.support_vectors_.shape[1]))
        padded = replace(
            clf,
            support_vectors_=np.vstack([clf.support_vectors_, extra]),
            dual_coef_=np.concatenate([clf.dual_coef_, np.zeros(pad)]),
        )

        clean_state = FastKernelState.from_classifier(clf)
        padded_state = FastKernelState.from_classifier(padded)
        assert padded_state.dropped == pad
        assert np.array_equal(
            padded_state.support_vectors, clean_state.support_vectors
        )
        assert np.array_equal(padded_state.dual_coef, clean_state.dual_coef)

        samples = rng.uniform(-2.0, 12.0, size=(40, 3))
        assert np.array_equal(
            padded_state.decision_function(samples),
            clean_state.decision_function(samples),
        )

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_compacted_state_stays_within_ulp_bound_of_exact(self, seed):
        from dataclasses import replace

        clf, rng = fitted_classifier(seed)
        extra = rng.uniform(0.0, 10.0, size=(5, clf.support_vectors_.shape[1]))
        padded = replace(
            clf,
            support_vectors_=np.vstack([clf.support_vectors_, extra]),
            dual_coef_=np.concatenate([clf.dual_coef_, np.zeros(5)]),
        )
        samples = rng.uniform(-2.0, 12.0, size=(48, 3))
        state = FastKernelState.from_classifier(padded)
        exact = padded.decision_function(samples)
        fast = state.decision_function(samples)
        assert margin_drift_ulps(exact, fast, state.scale) <= MAX_ULP_DRIFT

    def test_no_zero_rows_means_no_compaction(self):
        clf, _ = fitted_classifier(7)
        keep = clf.dual_coef_ != 0.0
        clf.support_vectors_ = clf.support_vectors_[keep]
        clf.dual_coef_ = clf.dual_coef_[keep]
        state = FastKernelState.from_classifier(clf)
        assert state.dropped == 0
        assert state.support_vectors.shape[0] == clf.support_vectors_.shape[0]

    def test_all_zero_duals_keep_the_similarity_guard_defined(self):
        clf, rng = fitted_classifier(11, far_field_floor=0.5)
        clf.dual_coef_ = np.zeros_like(clf.dual_coef_)
        state = FastKernelState.from_classifier(clf)
        # Degenerate models keep their vectors so max-similarity (and the
        # far-field guard) stays defined.
        assert state.dropped == 0
        assert state.support_vectors.shape[0] > 0
        values, similarity = state.evaluate(rng.uniform(0.0, 10.0, size=(5, 3)))
        assert np.all(np.isfinite(values))
        assert np.all(similarity >= 0.0)


class TestVectorizedGeometry:
    """The numpy sweeps equal the scalar ones exactly — no tolerance."""

    @staticmethod
    def _tiling_key(tiling):
        return [(t.rect, t.kind, t.index) for t in tiling.tiles]

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_tilings_equal_scalar(self, rects):
        for scalar_fn in (horizontal_tiling, vertical_tiling):
            scalar = scalar_fn(rects, WINDOW, fast=False)
            fast = scalar_fn(rects, WINDOW, fast=True)
            assert self._tiling_key(fast) == self._tiling_key(scalar)
            assert fast.orientation == scalar.orientation

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_cover_predicate_matches_scalar(self, rects):
        tiling = horizontal_tiling(rects, WINDOW)
        tiles = [t.rect for t in tiling.tiles]
        assert fastscan.tiling_covers_window(tiles, WINDOW) == tiling.covers_window()
        if tiles:
            # Punch a hole: both predicates must reject the broken cover.
            assert not fastscan.tiling_covers_window(tiles[1:], WINDOW) or not tiles[1:]

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_constraint_graphs_equal_scalar(self, rects):
        for tiling_fn, axis in ((horizontal_tiling, "h"), (vertical_tiling, "v")):
            tiling = tiling_fn(rects, WINDOW)
            scalar = build_mtcg(
                tiling, axis, with_diagonals=True, diagonal_max_gap=6, fast=False
            )
            fast = build_mtcg(
                tiling, axis, with_diagonals=True, diagonal_max_gap=6, fast=True
            )
            assert fast.edges == scalar.edges

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_topological_extraction_equals_scalar(self, rects):
        exact = extract_topological_features(
            rects, WINDOW, diagonal_max_gap=6, compute="exact"
        )
        fast = extract_topological_features(
            rects, WINDOW, diagonal_max_gap=6, compute="fast"
        )
        assert fast == exact

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_nontopo_extraction_equals_scalar(self, rects):
        exact = extract_nontopo_features(rects, WINDOW, compute="exact")
        fast = extract_nontopo_features(rects, WINDOW, compute="fast")
        assert fast == exact

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_fast_corner_and_touch_counts_equal_scalar(self, rects):
        assert fastscan.corner_and_touch_counts(
            rects, WINDOW
        ) == corner_and_touch_counts_scalar(rects, WINDOW)
        assert fastscan.corner_and_touch_counts(
            rects
        ) == corner_and_touch_counts_scalar(rects)

    @given(raw_rect_sets(), st.sampled_from([2, 3, 4, 6, 8]))
    @settings(max_examples=40, deadline=None)
    def test_fast_density_grid_is_bit_identical(self, rects, resolution):
        scalar = density_grid(rects, WINDOW, resolution)
        fast = density_grid_fast(rects, WINDOW, resolution)
        assert fast.dtype == scalar.dtype
        assert fast.shape == scalar.shape
        assert np.array_equal(fast, scalar)

    def test_fast_density_grid_rejects_what_scalar_rejects(self):
        with pytest.raises(GeometryError):
            density_grid_fast([], WINDOW, 0)
        with pytest.raises(GeometryError):
            density_grid_fast([], WINDOW, 7)  # 24 % 7 != 0
        assert np.array_equal(
            density_grid_fast([], WINDOW, 6), density_grid([], WINDOW, 6)
        )

    def test_space_strips_cover_the_complement(self):
        blocks = [Rect(0, 0, 8, 24), Rect(16, 4, 24, 20)]
        strips = fastscan.space_strips(blocks, WINDOW)
        covered = sum(r.area for r in strips)
        assert covered == WINDOW.area - sum(b.area for b in blocks)
        for strip in strips:
            assert WINDOW.contains_rect(strip)
            assert not any(strip.overlaps(b) for b in blocks)


class TestComputeModeConfig:
    def test_feature_config_rejects_unknown_modes(self):
        with pytest.raises(FeatureError):
            FeatureConfig(compute="turbo")

    def test_feature_fingerprint_is_mode_blind(self):
        # Extraction is bit-identical between modes, so both share one
        # feature-cache namespace: the fingerprint must not see the mode.
        exact = FeatureConfig(compute="exact")
        fast = FeatureConfig(compute="fast")
        assert feature_fingerprint(exact) == feature_fingerprint(fast)
        assert feature_fingerprint(exact) != feature_fingerprint(
            FeatureConfig(compute="exact", region="clip")
        )
