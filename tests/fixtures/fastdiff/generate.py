"""Regenerate the exact-vs-fast regression fixtures (deterministic).

Each fixture is a small GDSII layout that once tripped — or plausibly
could trip — a divergence between the scalar extraction sweeps and the
vectorized fast ones: degenerate unit/hairline rects, edge- and
corner-touching lattices, windows with no geometry at all, rects
spanning the window boundary, and one seeded mutation soup.  They were
promoted out of fuzz-mutant triage into named fixtures so the exact ==
fast contract is pinned on the nastiest inputs we know, not just on
hypothesis' random draws.

Run from the repo root to rebuild::

    PYTHONPATH=src python tests/fixtures/fastdiff/generate.py

The generator is seeded (no wall-clock, no entropy), so a rebuild is
byte-identical to the committed files.
"""

import random
from pathlib import Path

from repro.geometry.rect import Rect
from repro.layout.io import save_layout_gds
from repro.layout.layout import Layout

HERE = Path(__file__).parent
LAYER = 1
SEED = 20260809


def _layout(rects):
    layout = Layout()
    for rect in rects:
        layout.add_rect(LAYER, rect)
    return layout


def empty_window():
    """Geometry only in the first window; the second is empty space."""
    return [Rect(40, 40, 260, 140), Rect(300, 180, 560, 260)]


def single_unit_rect():
    """One 1x1-DBU rect — the most degenerate block a tiling can see."""
    return [Rect(299, 299, 300, 300)]


def hairline_strips():
    """Width-1 strips, horizontal and vertical, some touching the rim."""
    return [
        Rect(0, 100, 600, 101),
        Rect(120, 0, 121, 600),
        Rect(0, 0, 1, 600),
        Rect(598, 250, 599, 251),
    ]


def touching_edges():
    """Abutting rects: shared edges, zero overlap — adjacency stress."""
    return [
        Rect(100, 100, 200, 200),
        Rect(200, 100, 300, 200),
        Rect(100, 200, 200, 300),
        Rect(300, 100, 400, 150),
        Rect(300, 150, 400, 200),
    ]


def corner_touch_lattice():
    """Checkerboard of rects meeting only at corners."""
    rects = []
    for i in range(5):
        for j in range(5):
            if (i + j) % 2 == 0:
                x0, y0 = 60 + 80 * i, 60 + 80 * j
                rects.append(Rect(x0, y0, x0 + 80, y0 + 80))
    return rects


def full_cover():
    """The first window is one solid block: a tiling with no space."""
    return [Rect(0, 0, 600, 600), Rect(700, 700, 800, 800)]


def comb_fingers():
    """Interdigitated combs — long runs of alternating block/space."""
    rects = [Rect(50, 50, 70, 550)]
    for k in range(10):
        y0 = 70 + 48 * k
        rects.append(Rect(70, y0, 520, y0 + 20))
    rects.append(Rect(520, 50, 540, 550))
    return rects


def diagonal_ladder():
    """Staggered rects inside the diagonal-gap search distance."""
    rects = []
    for k in range(6):
        x0, y0 = 60 + 70 * k, 60 + 80 * k
        rects.append(Rect(x0, y0, x0 + 50, y0 + 40))
    return rects


def window_spanning():
    """Rects crossing the window boundary — clipping makes them thin."""
    return [
        Rect(580, 100, 700, 200),   # straddles x = 600
        Rect(100, 590, 220, 610),   # straddles y = 600
        Rect(595, 595, 605, 605),   # straddles the corner
        Rect(-40, 300, 5, 360),     # pokes in from outside
    ]


def mutation_soup():
    """Seeded random rects: duplicates, touching, containment, slivers."""
    rng = random.Random(SEED)
    rects = []
    for _ in range(24):
        x0 = rng.randrange(0, 560)
        y0 = rng.randrange(0, 560)
        w = rng.choice([1, 1, 2, 5, 20, 60, 120])
        h = rng.choice([1, 2, 4, 25, 70, 130])
        rects.append(Rect(x0, y0, min(600, x0 + w), min(600, y0 + h)))
    rects.extend(rects[:4])  # exact duplicates
    return rects


CASES = {
    "empty_window": empty_window,
    "single_unit_rect": single_unit_rect,
    "hairline_strips": hairline_strips,
    "touching_edges": touching_edges,
    "corner_touch_lattice": corner_touch_lattice,
    "full_cover": full_cover,
    "comb_fingers": comb_fingers,
    "diagonal_ladder": diagonal_ladder,
    "window_spanning": window_spanning,
    "mutation_soup": mutation_soup,
}


def main():
    for name, build in CASES.items():
        path = HERE / f"{name}.gds"
        save_layout_gds(_layout(build()), path)
        print(f"wrote {path.name}")


if __name__ == "__main__":
    main()
