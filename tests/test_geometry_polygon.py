"""Unit and property tests for polygons, dissection, and transforms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.dissect import (
    cut_to_max_size,
    disjoint_cover,
    dissect_polygon,
    horizontal_slices,
    merge_vertical,
    rects_cover_polygon,
    subtract_rect,
)
from repro.geometry.point import Point
from repro.geometry.polygon import CornerKind, Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import (
    ALL_ORIENTATIONS,
    Orientation,
    canonical_form,
    compose,
    transform_rect_in_window,
    transform_rects_in_window,
)


L_SHAPE = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
T_SHAPE = Polygon([(0, 0), (6, 0), (6, 2), (4, 2), (4, 5), (2, 5), (2, 2), (0, 2)])


class TestPolygon:
    def test_area_l_shape(self):
        assert L_SHAPE.area == 12

    def test_area_rect(self):
        assert Polygon.from_rect(Rect(1, 1, 5, 4)).area == 12

    def test_clockwise_input_normalised(self):
        ccw = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        cw = Polygon([(0, 0), (0, 4), (4, 4), (4, 0)])
        assert ccw == cw
        assert cw.area == 16

    def test_collinear_vertices_dropped(self):
        p = Polygon([(0, 0), (2, 0), (4, 0), (4, 4), (0, 4)])
        assert p.num_vertices == 4

    def test_non_rectilinear_raises(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (4, 1), (4, 4), (0, 4)])

    def test_too_few_vertices_raises(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (4, 0), (4, 4)])

    def test_corner_classification_l_shape(self):
        corners = L_SHAPE.corners()
        assert len(corners) == 6
        convex = [c for c in corners if c.kind == CornerKind.CONVEX]
        concave = [c for c in corners if c.kind == CornerKind.CONCAVE]
        assert len(convex) == 5
        assert len(concave) == 1
        assert concave[0].point == Point(2, 2)

    def test_convex_minus_concave_is_four(self):
        for poly in (L_SHAPE, T_SHAPE, Polygon.from_rect(Rect(0, 0, 3, 3))):
            assert poly.convex_corner_count() - poly.concave_corner_count() == 4

    def test_contains_point(self):
        assert L_SHAPE.contains_point(Point(1, 1))
        assert L_SHAPE.contains_point(Point(3, 1))
        assert not L_SHAPE.contains_point(Point(3, 3))
        # boundary counts as inside
        assert L_SHAPE.contains_point(Point(0, 0))

    def test_translated(self):
        moved = L_SHAPE.translated(10, 20)
        assert moved.bbox() == Rect(10, 20, 14, 24)
        assert moved.area == L_SHAPE.area


class TestDissection:
    def test_rect_single_slice(self):
        poly = Polygon.from_rect(Rect(0, 0, 10, 4))
        assert dissect_polygon(poly) == [Rect(0, 0, 10, 4)]

    def test_l_shape_cover(self):
        rects = dissect_polygon(L_SHAPE)
        assert rects_cover_polygon(L_SHAPE, rects)

    def test_t_shape_cover(self):
        rects = dissect_polygon(T_SHAPE)
        assert rects_cover_polygon(T_SHAPE, rects)

    def test_horizontal_slices_are_slabs(self):
        slabs = horizontal_slices(T_SHAPE)
        ys = sorted({v.y for v in T_SHAPE.vertices})
        for slab in slabs:
            assert slab.y0 in ys and slab.y1 in ys

    def test_merge_vertical(self):
        stacked = [Rect(0, 0, 2, 1), Rect(0, 1, 2, 2), Rect(0, 3, 2, 4)]
        merged = merge_vertical(stacked)
        assert merged == [Rect(0, 0, 2, 2), Rect(0, 3, 2, 4)]

    def test_cut_to_max_size(self):
        pieces = cut_to_max_size([Rect(0, 0, 10, 3)], 4)
        assert sum(p.area for p in pieces) == 30
        assert all(p.width <= 4 and p.height <= 4 for p in pieces)

    def test_cut_to_max_size_invalid(self):
        with pytest.raises(ValueError):
            cut_to_max_size([Rect(0, 0, 2, 2)], 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            min_size=3,
            max_size=3,
        )
    )
    def test_staircase_property(self, steps):
        """Random staircase polygons dissect into exact covers."""
        # Build a monotone staircase from cumulative positive steps.
        xs, ys = [0], [0]
        for dx, dy in steps:
            xs.append(xs[-1] + dx + 1)
            ys.append(ys[-1] + dy + 1)
        vertices = []
        for i in range(len(xs) - 1):
            vertices.append((xs[i], ys[i + 1]))
            vertices.append((xs[i + 1], ys[i + 1]))
        vertices.append((xs[-1], 0))
        vertices.append((0, 0))
        poly = Polygon(vertices)
        rects = dissect_polygon(poly)
        assert rects_cover_polygon(poly, rects)


class TestSubtractAndCover:
    def test_subtract_inside(self):
        pieces = subtract_rect(Rect(0, 0, 10, 10), Rect(3, 3, 7, 7))
        assert sum(p.area for p in pieces) == 100 - 16
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.overlaps(b)

    def test_subtract_disjoint(self):
        r = Rect(0, 0, 4, 4)
        assert subtract_rect(r, Rect(10, 10, 12, 12)) == [r]

    def test_subtract_covering(self):
        assert subtract_rect(Rect(2, 2, 4, 4), Rect(0, 0, 10, 10)) == []

    def test_disjoint_cover_area(self):
        rects = [Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(2, 0, 3, 10)]
        cover = disjoint_cover(rects)
        for i, a in enumerate(cover):
            for b in cover[i + 1 :]:
                assert not a.overlaps(b)
        from repro.geometry.rect import union_area

        assert sum(r.area for r in cover) == union_area(rects)


class TestOrientations:
    def test_group_has_eight_elements(self):
        assert len(ALL_ORIENTATIONS) == 8

    def test_compose_rotations(self):
        assert compose(Orientation.R90, Orientation.R90) is Orientation.R180
        assert compose(Orientation.R90, Orientation.R270) is Orientation.R0

    def test_inverse_roundtrip(self):
        window = Rect(0, 0, 10, 10)
        rect = Rect(1, 2, 4, 7)
        for orientation in ALL_ORIENTATIONS:
            forward = transform_rect_in_window(rect, window, orientation)
            back = transform_rect_in_window(forward, window, orientation.inverse())
            assert back == rect

    def test_r90_action(self):
        window = Rect(0, 0, 10, 10)
        rect = Rect(0, 0, 2, 1)  # lower-left corner sliver
        rotated = transform_rect_in_window(rect, window, Orientation.R90)
        # CCW rotation moves the lower-left corner content to lower-right
        assert rotated == Rect(9, 0, 10, 2)

    def test_mirror_preserves_area(self):
        window = Rect(0, 0, 10, 10)
        rect = Rect(1, 2, 4, 7)
        for orientation in ALL_ORIENTATIONS:
            image = transform_rect_in_window(rect, window, orientation)
            assert image.area == rect.area
            assert window.contains_rect(image)

    def test_non_square_window_rejects_axis_swap(self):
        with pytest.raises(GeometryError):
            transform_rect_in_window(
                Rect(0, 0, 1, 1), Rect(0, 0, 10, 6), Orientation.R90
            )

    def test_non_square_window_allows_mirror(self):
        window = Rect(0, 0, 10, 6)
        image = transform_rect_in_window(Rect(0, 0, 2, 2), window, Orientation.MY)
        assert image == Rect(8, 0, 10, 2)

    def test_canonical_form_invariant(self):
        window = Rect(0, 0, 10, 10)
        rects = [Rect(0, 0, 3, 1), Rect(5, 5, 6, 9)]
        _, canonical = canonical_form(rects, window)
        for orientation in ALL_ORIENTATIONS:
            oriented = transform_rects_in_window(rects, window, orientation)
            _, canonical2 = canonical_form(oriented, window)
            assert canonical == canonical2
