"""Tests for repro.obs — tracer, structured logs, manifests, CLI wiring."""

import io
import json
import threading

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.config import DetectorConfig
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.serve.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with tracing/logging disabled."""
    obs.set_tracer(None)
    obs.configure_logging(False)
    yield
    obs.set_tracer(None)
    obs.configure_logging(False)


# ======================================================================
# tracer
# ======================================================================


class TestTracer:
    def test_nesting_links_parents(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {span.name: span for span in tracer.finished()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].wall_s >= 0.0
        assert spans["inner"].status == "ok"

    def test_attrs_via_kwargs_and_set(self):
        tracer = obs.Tracer()
        with tracer.span("work", items=3) as span:
            span.set(produced=2)
        (span,) = tracer.finished()
        assert span.attrs == {"items": 3, "produced": 2}

    def test_exception_marks_error_and_propagates(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert "ValueError" in span.error
        # The stack unwound: a following span is again a root span.
        with tracer.span("after"):
            pass
        assert tracer.finished()[-1].parent_id is None

    def test_disabled_global_path_is_noop(self):
        assert not obs.enabled()
        assert obs.get_tracer() is NULL_TRACER
        with obs.trace("anything", attr=1) as span:
            span.set(more=2)
        assert span is NULL_SPAN
        obs.tally("hot", 1.0)
        assert obs.get_tracer().stage_totals() == {}

    def test_set_tracer_installs_and_resets(self):
        tracer = obs.Tracer()
        assert obs.set_tracer(tracer) is tracer
        assert obs.enabled()
        with obs.trace("stage"):
            pass
        obs.set_tracer(None)
        assert not obs.enabled()
        assert [span.name for span in tracer.finished()] == ["stage"]

    def test_tally_aggregates_counts_and_wall(self):
        tracer = obs.Tracer()
        tracer.tally("hot.loop", 0.5)
        tracer.tally("hot.loop", 0.25, count=2)
        totals = tracer.stage_totals()
        assert totals["hot.loop"]["count"] == 3
        assert totals["hot.loop"]["wall_s"] == pytest.approx(0.75)

    def test_stage_totals_merge_spans_and_tallies(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        tracer.tally("b", 0.1)
        totals = tracer.stage_totals()
        assert totals["a"]["count"] == 2
        assert totals["b"]["count"] == 1
        assert list(totals) == sorted(totals)

    def test_max_spans_bound_drops_but_counts(self):
        tracer = obs.Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.finished()) == 2
        assert tracer.dropped == 3

    def test_traced_decorator(self):
        tracer = obs.Tracer()
        obs.set_tracer(tracer)

        @obs.traced("decorated.stage")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert [span.name for span in tracer.finished()] == ["decorated.stage"]

    def test_threaded_spans_have_independent_stacks(self):
        tracer = obs.Tracer()

        def worker():
            with tracer.span("thread.child"):
                pass

        with tracer.span("main.root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {span.name: span for span in tracer.finished()}
        # The other thread's span must not adopt this thread's root.
        assert spans["thread.child"].parent_id is None

    def test_chrome_export_format(self):
        tracer = obs.Tracer()
        with tracer.span("stage.outer"):
            with tracer.span("stage.inner", clips=4):
                pass
        document = tracer.export_chrome()
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert {e["name"] for e in complete} == {"stage.outer", "stage.inner"}
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "pid" in event and "tid" in event
        inner = next(e for e in complete if e["name"] == "stage.inner")
        assert inner["args"]["clips"] == 4
        # Valid JSON end to end (what chrome://tracing will parse).
        json.loads(json.dumps(document))

    def test_chrome_export_error_span_annotated(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("x")
        (event,) = [
            e for e in tracer.export_chrome()["traceEvents"] if e.get("ph") == "X"
        ]
        assert event["args"]["status"] == "error"

    def test_metrics_bridge_observes_stage_histograms(self):
        metrics = MetricsRegistry()
        tracer = obs.Tracer(metrics=metrics)
        with tracer.span("stage.a"):
            pass
        tracer.tally("stage.b", 0.01)
        text = metrics.render()
        assert 'repro_pipeline_stage_seconds_bucket{stage="stage.a"' in text
        assert 'repro_pipeline_stage_seconds_bucket{stage="stage.b"' in text

    def test_metrics_bridge_survives_broken_sink(self):
        class Broken:
            def histogram(self, *args, **kwargs):
                raise RuntimeError("no metrics for you")

        tracer = obs.Tracer(metrics=Broken())
        with tracer.span("stage.a"):
            pass
        assert len(tracer.finished()) == 1


# ======================================================================
# structured logging
# ======================================================================


class TestLogs:
    def test_disabled_by_default_writes_nothing(self):
        stream = io.StringIO()
        obs.get_logger("x").info("event", stream_should_be_empty=True)
        assert stream.getvalue() == ""

    def test_emits_json_lines_with_context(self):
        stream = io.StringIO()
        obs.configure_logging(True, stream=stream, run="r-1")
        log = obs.get_logger("pipeline").bind(stage="train")
        log.info("kernel_trained", cluster=3)
        record = json.loads(stream.getvalue().strip())
        assert record["logger"] == "pipeline"
        assert record["event"] == "kernel_trained"
        assert record["run"] == "r-1"
        assert record["stage"] == "train"
        assert record["cluster"] == 3
        assert record["level"] == "info"
        assert "ts" in record

    def test_level_filtering(self):
        stream = io.StringIO()
        obs.configure_logging(True, stream=stream, level="warning")
        log = obs.get_logger("noisy")
        log.info("dropped")
        log.warning("kept")
        lines = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert [record["event"] for record in lines] == ["kept"]


# ======================================================================
# manifests and fingerprints
# ======================================================================


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = obs.RunManifest.new("train", argv=["train", "--x"])
        manifest.config = obs.config_summary(DetectorConfig.ours())
        manifest.record_metrics(accuracy=0.9, kernels=5)
        manifest.record_artifact("model", tmp_path / "m.npz")
        tracer = obs.Tracer()
        with tracer.span("stage.one"):
            pass
        manifest.finish(tracer)
        path = manifest.write(tmp_path / "run.manifest.json")
        loaded = obs.RunManifest.load(path)
        assert loaded.run_id == manifest.run_id
        assert loaded.command == "train"
        assert loaded.metrics["accuracy"] == 0.9
        assert "stage.one" in loaded.stages
        assert loaded.schema == 1
        assert loaded.config["svm"]  # nested config dataclass survived

    def test_fingerprint_clipset_deterministic_and_sensitive(self, small_benchmark):
        clips = list(small_benchmark.training)
        first = obs.fingerprint_clipset(clips)
        second = obs.fingerprint_clipset(clips)
        assert first == second
        assert first["clips"] == len(clips)
        # Hotspot labels are counted, not every labeled clip.
        hotspot_count = len(small_benchmark.training.hotspots())
        assert first["hotspots"] == hotspot_count
        assert 0 < hotspot_count < len(clips)
        reordered = obs.fingerprint_clipset(list(reversed(clips)))
        assert reordered["sha256"] != first["sha256"]

    def test_fingerprint_layout(self, small_benchmark):
        layer = small_benchmark.testing.layout.layer(1)
        print_ = obs.fingerprint_layout(layer)
        assert print_["rects"] == len(list(layer.rects))
        assert print_ == obs.fingerprint_layout(layer)

    def test_render_and_compare(self, tmp_path):
        base = obs.RunManifest.new("scan", run_id="run-a")
        base.stages = {"detect.margins": {"count": 1, "wall_s": 0.5, "cpu_s": 0.4}}
        base.record_metrics(candidates=100)
        other = obs.RunManifest.new("scan", run_id="run-b")
        other.stages = {"detect.margins": {"count": 1, "wall_s": 0.25, "cpu_s": 0.2}}
        other.record_metrics(candidates=90)
        text = obs.render_manifest(base)
        assert "run-a" in text and "detect.margins" in text
        diff = obs.compare_manifests(base, other)
        assert "run-a" in diff and "run-b" in diff
        assert "detect.margins" in diff
        assert "-50%" in diff


# ======================================================================
# CLI integration
# ======================================================================


class TestCliObservability:
    def test_train_writes_manifest_and_trace(self, tmp_path):
        out = tmp_path / "data"
        assert (
            cli_main(
                [
                    "generate",
                    "--benchmark",
                    "benchmark5",
                    "--scale",
                    "0.4",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        model = tmp_path / "model.npz"
        trace_path = tmp_path / "train_trace.json"
        assert (
            cli_main(
                [
                    "train",
                    "--clips",
                    str(out / "benchmark5_training_clips.gds"),
                    "--model",
                    str(model),
                    "--trace",
                    str(trace_path),
                ]
            )
            == 0
        )
        manifest = obs.RunManifest.load(model.with_suffix(".manifest.json"))
        assert manifest.command == "train"
        assert manifest.dataset["training_clips"]["clips"] > 0
        assert manifest.metrics["kernels"] >= 1
        for stage in ("topology.classify", "train.kernels", "svm.fit"):
            assert stage in manifest.stages, stage
        assert manifest.artifacts["model"] == str(model)
        chrome = json.loads(trace_path.read_text())
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])
        # The global tracer was uninstalled when the command returned.
        assert not obs.enabled()

    def test_no_manifest_opt_out(self, tmp_path):
        out = tmp_path / "data"
        cli_main(
            ["generate", "--benchmark", "benchmark5", "--scale", "0.4", "--out", str(out)]
        )
        model = tmp_path / "model.npz"
        assert (
            cli_main(
                [
                    "train",
                    "--clips",
                    str(out / "benchmark5_training_clips.gds"),
                    "--model",
                    str(model),
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert not model.with_suffix(".manifest.json").exists()

    def test_report_renders_and_compares(self, tmp_path, capsys):
        first = obs.RunManifest.new("scan", run_id="base-run")
        first.stages = {"detector.detect": {"count": 1, "wall_s": 1.0, "cpu_s": 0.9}}
        first.record_metrics(reports=12)
        path_a = first.write(tmp_path / "a.manifest.json")
        second = obs.RunManifest.new("scan", run_id="other-run")
        second.stages = {"detector.detect": {"count": 1, "wall_s": 0.5, "cpu_s": 0.4}}
        second.record_metrics(reports=10)
        path_b = second.write(tmp_path / "b.manifest.json")

        assert cli_main(["report", str(path_a)]) == 0
        rendered = capsys.readouterr().out
        assert "base-run" in rendered and "detector.detect" in rendered

        assert cli_main(["report", str(path_a), "--compare", str(path_b)]) == 0
        diff = capsys.readouterr().out
        assert "base-run" in diff and "other-run" in diff

        assert cli_main(["report", str(path_a), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["run_id"] == "base-run"

    def test_report_missing_file_exits_2(self, tmp_path):
        assert cli_main(["report", str(tmp_path / "missing.json")]) == 2
