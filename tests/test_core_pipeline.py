"""Tests for resampling, extraction, removal — the core pipeline stages."""

import pytest

from repro.core.config import DetectorConfig, ExtractionConfig, RemovalConfig
from repro.core.extraction import extract_candidate_clips
from repro.core.removal import (
    discard_redundant,
    merge_into_regions,
    reframe_region,
    region_frame,
    remove_redundant_clips,
    shift_to_gravity,
)
from repro.core.resample import (
    balancing_class_weights,
    downsample_to_centroids,
    shift_derivatives,
    upsample_hotspots,
)
from repro.errors import ConfigError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.layout.layout import Layout
from repro.topology.cluster import ClassifierConfig, TopologicalClassifier

SPEC = ClipSpec(core_side=1200, clip_side=4800)


class TestConfigs:
    def test_defaults_match_paper(self):
        config = DetectorConfig()
        assert config.svm.initial_c == 1000.0
        assert config.svm.initial_gamma == 0.01
        assert config.classifier.expected_cluster_count == 10
        assert config.shift_amount == 120  # lc / 10
        assert config.extraction.max_boundary_distance == 1440
        assert config.removal.min_merge_overlap == pytest.approx(0.20)
        assert config.removal.reframe_separation == 1150

    def test_named_operating_points(self):
        assert DetectorConfig.ours_low().decision_threshold > DetectorConfig.ours_med().decision_threshold
        assert DetectorConfig.basic().use_topology is False
        assert DetectorConfig.with_topology().use_removal is False
        assert DetectorConfig.with_removal().use_feedback is False
        assert DetectorConfig.with_removal().use_removal is True

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExtractionConfig(min_core_density=0.9, max_core_density=0.1)
        with pytest.raises(ConfigError):
            RemovalConfig(min_merge_overlap=0.0)
        with pytest.raises(ConfigError):
            RemovalConfig(reframe_separation=0)
        with pytest.raises(ConfigError):
            DetectorConfig(shift_amount=-1)

    def test_reframe_separation_must_beat_core(self):
        with pytest.raises(ConfigError):
            DetectorConfig(
                removal=RemovalConfig(reframe_separation=1300)
            )


class TestResample:
    def make_clip(self, label=ClipLabel.HOTSPOT):
        return Clip.build(
            SPEC.clip_at(0, 0), SPEC, [Rect(2000, 2000, 2400, 2600)], label
        )

    def test_shift_derivatives_count(self):
        assert len(shift_derivatives(self.make_clip(), 120)) == 5
        assert len(shift_derivatives(self.make_clip(), 0)) == 1

    def test_shift_directions(self):
        clip = self.make_clip()
        derivatives = shift_derivatives(clip, 120)
        windows = {d.window.lower_left for d in derivatives}
        assert len(windows) == 5  # original plus 4 distinct shifts

    def test_upsample(self):
        clips = [self.make_clip(), self.make_clip()]
        assert len(upsample_hotspots(clips, 120)) == 10

    def test_downsample_to_centroids(self):
        clips = [
            self.make_clip(ClipLabel.NON_HOTSPOT),
            self.make_clip(ClipLabel.NON_HOTSPOT),
        ]
        classifier = TopologicalClassifier(
            ClassifierConfig(grid_resolution=12, radius_threshold=100.0)
        )
        clusters = classifier.classify(clips)
        centroids = downsample_to_centroids(clips, clusters)
        assert len(centroids) == len(clusters) == 1

    def test_class_weights(self):
        assert balancing_class_weights(10, 100) == {1: 10.0}
        assert balancing_class_weights(100, 10) == {-1: 10.0}
        assert balancing_class_weights(0, 10) == {}


class TestExtraction:
    #: Permissive requirements for structural tests; the paper-default
    #: thresholds are exercised separately below.
    OPEN = ExtractionConfig(
        min_core_density=0.0, min_polygon_count=0, max_boundary_distance=10_000
    )

    def build_layout(self):
        layout = Layout()
        # A small cross of wires in an otherwise empty region.
        layout.add_rect(1, Rect(10000, 10000, 10100, 12000))
        layout.add_rect(1, Rect(9000, 10900, 12000, 11000))
        return layout

    def test_candidates_extracted(self):
        report = extract_candidate_clips(self.build_layout(), SPEC, self.OPEN)
        assert report.candidate_count > 0
        assert report.anchor_count >= report.candidate_count

    def test_anchors_at_rect_corners(self):
        report = extract_candidate_clips(self.build_layout(), SPEC, self.OPEN)
        anchors = {(c.core.x0, c.core.y0) for c in report.clips}
        assert (10000, 10000) in anchors

    def test_density_filter(self):
        config = ExtractionConfig(min_core_density=0.5)  # nothing this dense
        report = extract_candidate_clips(self.build_layout(), SPEC, config)
        assert report.candidate_count == 0
        assert report.rejected_density > 0

    def test_count_filter(self):
        config = ExtractionConfig(min_polygon_count=50)
        report = extract_candidate_clips(self.build_layout(), SPEC, config)
        assert report.candidate_count == 0
        assert report.rejected_count > 0

    def test_boundary_filter(self):
        # Geometry hugging one clip corner fails the bbox-proximity rule.
        layout = Layout()
        layout.add_rect(1, Rect(0, 0, 100, 100))
        layout.add_rect(1, Rect(150, 150, 220, 260))
        config = ExtractionConfig(
            min_core_density=0.0, min_polygon_count=0, max_boundary_distance=1000
        )
        report = extract_candidate_clips(layout, SPEC, config)
        assert report.rejected_boundary > 0

    def test_region_restriction(self):
        layout = self.build_layout()
        layout.add_rect(1, Rect(100000, 100000, 100100, 101000))
        everywhere = extract_candidate_clips(layout, SPEC, self.OPEN)
        near = extract_candidate_clips(
            layout, SPEC, self.OPEN, region=Rect(0, 0, 50000, 50000)
        )
        assert near.candidate_count < everywhere.candidate_count

    def test_parallel_matches_serial(self):
        layout = self.build_layout()
        # force the parallel path by exceeding the anchor threshold
        for i in range(80):
            layout.add_rect(1, Rect(20000 + 70 * i, 20000, 20050 + 70 * i, 21500))
        serial2 = extract_candidate_clips(layout, SPEC, self.OPEN, parallel_workers=1)
        parallel = extract_candidate_clips(layout, SPEC, self.OPEN, parallel_workers=4)
        assert sorted(c.window for c in parallel.clips) == sorted(
            c.window for c in serial2.clips
        )


def report_clip(x, y, rects=()):
    core = Rect(x, y, x + 1200, y + 1200)
    return Clip.build(SPEC.clip_for_core(core), SPEC, rects)


class TestRemoval:
    def test_merge_regions_by_overlap(self):
        reports = [report_clip(0, 0), report_clip(200, 0), report_clip(5000, 5000)]
        regions = merge_into_regions(reports, 0.2)
        sizes = sorted(len(r) for r in regions)
        assert sizes == [1, 2]

    def test_merge_respects_threshold(self):
        # 200/1200 overlap = 83% in x, full y -> merged at 0.2; a 1100
        # offset leaves ~8% overlap -> not merged.
        reports = [report_clip(0, 0), report_clip(1100, 0)]
        assert len(merge_into_regions(reports, 0.2)) == 2

    def test_region_frame(self):
        reports = [report_clip(0, 0), report_clip(300, 300)]
        frame = region_frame(reports, [0, 1])
        assert frame == Rect(0, 0, 1500, 1500)

    def test_reframe_covers_region(self):
        """Any core-sized box inside the frame overlaps a reframed core."""
        frame = Rect(0, 0, 4000, 2600)
        clips = reframe_region(frame, SPEC, 1150, lambda core: report_clip(core.x0, core.y0))
        for x in range(0, 4000 - 1200, 137):
            for y in range(0, 2600 - 1200, 171):
                probe = Rect(x, y, x + 1200, y + 1200)
                assert any(c.core.overlaps(probe) for c in clips)

    def test_reframe_small_frame_single_core(self):
        frame = Rect(0, 0, 1200, 1200)
        clips = reframe_region(frame, SPEC, 1150, lambda core: report_clip(core.x0, core.y0))
        assert len(clips) == 1

    def test_discard_redundant_drops_covered(self):
        shared = [Rect(500, 500, 700, 700)]
        a = report_clip(0, 0, shared)
        b = report_clip(100, 0, shared)
        c = report_clip(50, 0, shared)  # corners and polygons covered by a+b
        kept = discard_redundant([a, b, c])
        assert len(kept) == 2

    def test_discard_keeps_sole_coverage(self):
        a = report_clip(0, 0, [Rect(10, 10, 100, 100)])
        b = report_clip(5000, 5000, [Rect(5100, 5100, 5200, 5200)])
        assert len(discard_redundant([a, b])) == 2

    def test_shift_to_gravity_recentres(self):
        # geometry crammed into one corner of the clip
        rects = [Rect(-1500, -1500, -1200, -1200)]
        clip = Clip.build(SPEC.clip_at(-1800, -1800), SPEC, rects)
        config = RemovalConfig(max_boundary_distance=500)
        factory = lambda core: Clip.build(SPEC.clip_for_core(core), SPEC, rects)
        moved = shift_to_gravity(clip, config, factory)
        assert moved.window.center.manhattan_distance(
            Rect(-1500, -1500, -1200, -1200).center
        ) < clip.window.center.manhattan_distance(
            Rect(-1500, -1500, -1200, -1200).center
        )

    def test_full_removal_reduces_dense_cluster(self):
        """> threshold strongly-overlapping reports collapse (Fig. 12)."""
        shared = [Rect(600, 600, 800, 800)]
        reports = [report_clip(60 * i, 40 * i, shared) for i in range(8)]
        config = RemovalConfig()
        factory = lambda core: Clip.build(SPEC.clip_for_core(core), SPEC, shared)
        kept = remove_redundant_clips(reports, SPEC, config, factory)
        assert 1 <= len(kept) < 8
        # coverage guarantee: the shared geometry is still inside some core
        assert any(k.core.contains_rect(shared[0]) for k in kept)

    def test_removal_empty_input(self):
        assert remove_redundant_clips([], SPEC, RemovalConfig(), lambda c: None) == []
