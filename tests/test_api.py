"""Public API surface tests: imports, exports, error hierarchy."""

import pytest

import repro
from repro import errors


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_facade_classes_importable(self):
        from repro import (
            Clip,
            ClipLabel,
            ClipSet,
            ClipSpec,
            DetectorConfig,
            HotspotDetector,
            Layout,
            generate_benchmark,
        )

        assert HotspotDetector is not None

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geometry",
            "repro.gdsii",
            "repro.layout",
            "repro.topology",
            "repro.mtcg",
            "repro.features",
            "repro.svm",
            "repro.core",
            "repro.baselines",
            "repro.multilayer",
            "repro.data",
        ],
    )
    def test_subpackage_all_exports(self, module):
        imported = __import__(module, fromlist=["__all__"])
        for name in imported.__all__:
            assert getattr(imported, name, None) is not None, f"{module}.{name}"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.GdsiiRecordError, errors.GdsiiError)
        assert issubclass(errors.NotFittedError, errors.SvmError)
        assert issubclass(errors.ConvergenceError, errors.SvmError)

    def test_catchable_at_base(self):
        from repro.geometry.rect import Rect

        with pytest.raises(errors.ReproError):
            Rect(0, 0, 0, 0)

    def test_domain_errors_not_builtin_leaks(self):
        """Library-specific failures raise ReproError subclasses."""
        from repro.data.patterns import motif_by_name
        from repro.layout.clip import ClipSpec

        with pytest.raises(errors.DataError):
            motif_by_name("bogus")
        with pytest.raises(errors.LayoutError):
            ClipSpec(core_side=0, clip_side=10)
