"""Unit and property tests for repro.geometry.rect."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_box, total_area, union_area


def rects(max_coord=50):
    """Hypothesis strategy for valid rectangles."""
    return st.builds(
        lambda x0, y0, w, h: Rect(x0, y0, x0 + w, y0 + h),
        st.integers(-max_coord, max_coord),
        st.integers(-max_coord, max_coord),
        st.integers(1, max_coord),
        st.integers(1, max_coord),
    )


class TestConstruction:
    def test_valid(self):
        r = Rect(0, 0, 10, 5)
        assert r.width == 10
        assert r.height == 5
        assert r.area == 50

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            Rect(0, 0, 0, 5)

    def test_inverted_raises(self):
        with pytest.raises(GeometryError):
            Rect(10, 0, 0, 5)

    def test_maybe_returns_none_for_empty(self):
        assert Rect.maybe(5, 5, 5, 10) is None
        assert Rect.maybe(5, 5, 4, 10) is None

    def test_maybe_returns_rect(self):
        assert Rect.maybe(0, 0, 1, 1) == Rect(0, 0, 1, 1)

    def test_from_corners_any_order(self):
        assert Rect.from_corners(Point(5, 7), Point(1, 2)) == Rect(1, 2, 5, 7)

    def test_from_center_even(self):
        r = Rect.from_center(0, 0, 10, 4)
        assert r == Rect(-5, -2, 5, 2)

    def test_from_center_odd_biased_lower_left(self):
        r = Rect.from_center(0, 0, 5, 5)
        assert r.width == 5 and r.height == 5
        assert r.x0 == -2


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(0, 0), strict=True)
        assert r.contains_point(Point(5, 5), strict=True)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 8))

    def test_overlap_vs_touch(self):
        a = Rect(0, 0, 5, 5)
        touching = Rect(5, 0, 10, 5)
        assert not a.overlaps(touching)
        assert a.touches(touching)
        overlapping = Rect(4, 0, 9, 5)
        assert a.overlaps(overlapping)

    def test_corner_touch(self):
        a = Rect(0, 0, 5, 5)
        corner = Rect(5, 5, 8, 8)
        assert not a.overlaps(corner)
        assert a.touches(corner)

    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects(), rects())
    def test_overlap_implies_touch(self, a, b):
        if a.overlaps(b):
            assert a.touches(b)


class TestCombination:
    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection(b) == Rect(5, 5, 10, 10)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(3, 3, 5, 5)) is None

    @given(rects(), rects())
    def test_intersection_area_matches(self, a, b):
        inter = a.intersection(b)
        expected = inter.area if inter else 0
        assert a.intersection_area(b) == expected

    @given(rects(), rects())
    def test_union_bbox_contains_both(self, a, b):
        box = a.union_bbox(b)
        assert box.contains_rect(a) and box.contains_rect(b)

    def test_expanded(self):
        assert Rect(2, 2, 4, 4).expanded(2) == Rect(0, 0, 6, 6)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 6, 6).expanded(-2) == Rect(2, 2, 4, 4)

    @given(rects(), st.integers(-30, 30), st.integers(-30, 30))
    def test_translate_preserves_size(self, r, dx, dy):
        moved = r.translated(dx, dy)
        assert moved.width == r.width and moved.height == r.height


class TestGaps:
    def test_gap_x(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(8, 0, 12, 5)
        assert a.gap_x(b) == 3
        assert b.gap_x(a) == 3

    def test_gap_zero_when_overlapping_span(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(3, 10, 8, 15)
        assert a.gap_x(b) == 0
        assert a.gap_y(b) == 5

    def test_separation_diagonal(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(5, 6, 8, 9)
        # gaps: gx = 3, gy = 4 -> euclidean 5
        assert a.separation(b) == 5

    def test_separation_touching_is_zero(self):
        assert Rect(0, 0, 2, 2).separation(Rect(2, 0, 4, 2)) == 0


class TestAggregate:
    def test_bounding_box_empty(self):
        assert bounding_box([]) is None

    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(5, 5, 7, 9)])
        assert box == Rect(0, 0, 7, 9)

    def test_total_area_disjoint(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(3, 3, 5, 5)]) == 8

    def test_union_area_overlapping(self):
        # two 2x2 squares overlapping in a 1x2 strip
        assert union_area([Rect(0, 0, 2, 2), Rect(1, 0, 3, 2)]) == 6

    def test_union_area_empty(self):
        assert union_area([]) == 0

    @given(st.lists(rects(20), min_size=1, max_size=6))
    def test_union_area_bounds(self, rect_list):
        union = union_area(rect_list)
        assert union <= sum(r.area for r in rect_list)
        assert union >= max(r.area for r in rect_list)
