"""Tests for nontopological features and the vectorization pipeline."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.nontopo import (
    NONTOPO_SLOTS,
    corner_and_touch_counts,
    extract_nontopo_features,
)
from repro.features.vector import (
    TYPE_ORDER,
    FeatureConfig,
    FeatureExtractor,
    FeatureSchema,
)
from repro.mtcg.rules import RULE_RECT_SLOTS, FeatureType
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec

WINDOW = Rect(0, 0, 12, 12)
SPEC = ClipSpec(core_side=12, clip_side=36)


def make_clip(core_rects, ambit_rects=(), label=ClipLabel.HOTSPOT):
    window = SPEC.clip_at(0, 0)
    core = SPEC.core_of(window)
    placed = [r.translated(core.x0, core.y0) for r in core_rects]
    return Clip.build(window, SPEC, list(placed) + list(ambit_rects), label)


class TestNonTopoFeatures:
    def test_single_rect(self):
        features = extract_nontopo_features([Rect(2, 2, 8, 5)], WINDOW)
        assert features.corner_count == 4
        assert features.touch_count == 0
        assert features.min_internal == 3  # the narrow dimension
        assert features.density == pytest.approx(18 / 144)

    def test_l_union_corner_count(self):
        rects = [Rect(0, 0, 4, 2), Rect(0, 2, 2, 4)]  # an L of two rects
        corners, touches = corner_and_touch_counts(rects, Rect(-1, -1, 13, 13))
        assert corners == 6
        assert touches == 0

    def test_touch_point_detected(self):
        rects = [Rect(0, 0, 4, 4), Rect(4, 4, 8, 8)]
        corners, touches = corner_and_touch_counts(rects, Rect(-1, -1, 13, 13))
        assert touches == 1

    def test_window_boundary_vertices_ignored(self):
        corners, touches = corner_and_touch_counts([Rect(0, 0, 12, 12)], WINDOW)
        assert corners == 0 and touches == 0

    def test_min_external_spacing(self):
        features = extract_nontopo_features(
            [Rect(0, 4, 5, 8), Rect(8, 4, 12, 8)], WINDOW
        )
        assert features.min_external == 3

    def test_empty_window_defaults(self):
        features = extract_nontopo_features([], WINDOW)
        assert features.min_internal == 12
        assert features.min_external == 12
        assert features.density == 0.0

    def test_as_list_length(self):
        features = extract_nontopo_features([Rect(1, 1, 4, 4)], WINDOW)
        assert len(features.as_list()) == NONTOPO_SLOTS


class TestFeatureConfig:
    def test_bad_region_rejected(self):
        with pytest.raises(FeatureError):
            FeatureConfig(region="nope")

    def test_bad_resolution_rejected(self):
        with pytest.raises(FeatureError):
            FeatureConfig(density_resolution=0)

    def test_negative_context_margin_rejected(self):
        with pytest.raises(FeatureError):
            FeatureConfig(context_margin=-1)


class TestExtractor:
    def test_extract_core_region(self):
        clip = make_clip([Rect(2, 2, 6, 6)], ambit_rects=[Rect(0, 0, 3, 3)])
        extractor = FeatureExtractor(FeatureConfig(region="core"))
        extraction = extractor.extract(clip)
        # the ambit rect must not affect core density
        assert extraction.nontopo.density == pytest.approx(16 / 144)

    def test_extract_clip_region_sees_ambit(self):
        clip = make_clip([Rect(2, 2, 6, 6)], ambit_rects=[Rect(0, 0, 3, 3)])
        core_only = FeatureExtractor(FeatureConfig(region="core")).extract(clip)
        whole = FeatureExtractor(FeatureConfig(region="clip")).extract(clip)
        assert whole.nontopo.density != core_only.nontopo.density

    def test_context_region_between(self):
        clip = make_clip([Rect(2, 2, 6, 6)], ambit_rects=[Rect(0, 0, 3, 3)])
        context = FeatureExtractor(
            FeatureConfig(region="context", context_margin=6)
        ).extract(clip)
        # context window is core expanded by 6: covers the ambit rect fully
        assert context.nontopo.density > 0

    def test_canonical_orientation_makes_congruent_equal(self):
        from repro.geometry.transform import Orientation

        clip = make_clip([Rect(0, 0, 3, 12), Rect(5, 4, 11, 6)])
        rotated = clip.oriented(Orientation.R90)
        extractor = FeatureExtractor(FeatureConfig(canonical_orientation=True))
        a = extractor.extract(clip)
        b = extractor.extract(rotated)
        assert a.rules == b.rules

    def test_without_canonical_orientation_differs(self):
        from repro.geometry.transform import Orientation

        clip = make_clip([Rect(0, 0, 3, 12), Rect(5, 4, 11, 6)])
        rotated = clip.oriented(Orientation.R90)
        extractor = FeatureExtractor(FeatureConfig(canonical_orientation=False))
        assert extractor.extract(clip).rules != extractor.extract(rotated).rules


class TestSchemaAndVectorize:
    def test_schema_from_extractions_takes_max(self):
        extractor = FeatureExtractor(FeatureConfig())
        one = extractor.extract(make_clip([Rect(4, 4, 8, 8)]))
        many = extractor.extract(
            make_clip([Rect(1, 1, 3, 5), Rect(5, 1, 7, 9), Rect(9, 1, 11, 5)])
        )
        schema = FeatureSchema.from_extractions([one, many])
        for ftype in TYPE_ORDER:
            assert schema.counts[ftype] >= one.count_of(ftype)
            assert schema.counts[ftype] >= many.count_of(ftype)

    def test_vector_length_matches_schema(self):
        extractor = FeatureExtractor(FeatureConfig())
        clip = make_clip([Rect(4, 4, 8, 8)])
        matrix, schema = extractor.build_matrix([clip])
        assert matrix.shape == (1, schema.vector_length(extractor.config))

    def test_padding_for_sparse_patterns(self):
        extractor = FeatureExtractor(FeatureConfig())
        rich = make_clip([Rect(1, 1, 3, 5), Rect(5, 1, 7, 9), Rect(9, 1, 11, 5)])
        sparse = make_clip([Rect(4, 4, 8, 8)])
        matrix, schema = extractor.build_matrix([rich, sparse])
        assert matrix.shape[0] == 2
        assert matrix.shape[1] == schema.vector_length(extractor.config)

    def test_truncation_beyond_schema(self):
        extractor = FeatureExtractor(FeatureConfig())
        rich = make_clip([Rect(1, 1, 3, 5), Rect(5, 1, 7, 9), Rect(9, 1, 11, 5)])
        small_schema = FeatureSchema({ftype: 1 for ftype in TYPE_ORDER})
        vector = extractor.vectorize_clip(rich, small_schema)
        assert len(vector) == 4 * RULE_RECT_SLOTS + NONTOPO_SLOTS

    def test_density_grid_block_appended(self):
        config = FeatureConfig(include_density_grid=True, density_resolution=6)
        extractor = FeatureExtractor(config)
        clip = make_clip([Rect(4, 4, 8, 8)])
        matrix, schema = extractor.build_matrix([clip])
        assert matrix.shape[1] == schema.vector_length(config)
        assert matrix.shape[1] >= 36

    def test_empty_population(self):
        extractor = FeatureExtractor(FeatureConfig())
        matrix, schema = extractor.build_matrix([])
        assert matrix.shape[0] == 0

    def test_identical_clips_identical_vectors(self):
        extractor = FeatureExtractor(FeatureConfig())
        clip = make_clip([Rect(2, 2, 6, 10)])
        matrix, _ = extractor.build_matrix([clip, clip])
        assert np.array_equal(matrix[0], matrix[1])
