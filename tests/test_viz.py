"""Tests for the SVG renderer."""

import pytest

from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipSpec
from repro.layout.layout import Layout
from repro.viz import SvgCanvas, render_clip_svg, render_detection_svg, render_layout_svg


class TestCanvas:
    def test_coordinate_flip(self):
        canvas = SvgCanvas(Rect(0, 0, 100, 100), width_px=100)
        # layout y=0 is the bottom -> SVG y = height
        assert canvas._y(0) == pytest.approx(100)
        assert canvas._y(100) == pytest.approx(0)

    def test_render_wellformed(self):
        canvas = SvgCanvas(Rect(0, 0, 100, 50), width_px=200)
        canvas.add_rect(Rect(10, 10, 30, 20), 'fill="red"')
        canvas.add_label(10, 40, "hello")
        text = canvas.render()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")
        assert "<rect" in text and "hello" in text
        assert 'height="100"' in text  # aspect preserved

    def test_save(self, tmp_path):
        canvas = SvgCanvas(Rect(0, 0, 10, 10))
        out = tmp_path / "c.svg"
        canvas.save(out)
        assert out.read_text().startswith("<svg")


class TestRenderers:
    def test_render_layout(self, tmp_path):
        layout = Layout()
        layout.add_rect(1, Rect(0, 0, 500, 100))
        layout.add_rect(1, Rect(0, 300, 500, 400))
        canvas = render_layout_svg(layout, tmp_path / "layout.svg")
        assert (tmp_path / "layout.svg").exists()
        assert canvas.render().count("<rect") >= 3  # background + 2 shapes

    def test_render_empty_layout_raises(self, tmp_path):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            render_layout_svg(Layout(), tmp_path / "x.svg")

    def test_render_clip(self, tmp_path):
        spec = ClipSpec(core_side=400, clip_side=1200)
        clip = Clip.build(spec.clip_at(0, 0), spec, [Rect(500, 500, 700, 700)])
        render_clip_svg(clip, tmp_path / "clip.svg")
        text = (tmp_path / "clip.svg").read_text()
        assert "stroke-dasharray" in text  # the core outline

    def test_render_detection(self, tmp_path, small_benchmark):
        from repro.core.config import DetectorConfig
        from repro.core.detector import HotspotDetector

        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        result = detector.score(small_benchmark.testing)
        out = tmp_path / "detection.svg"
        render_detection_svg(small_benchmark.testing, result.reports, out)
        text = out.read_text()
        assert text.count("#1f9d3a") == len(small_benchmark.testing.hotspot_cores())
        assert text.count("#d43a3a") == 2 * len(result.reports)  # fill+stroke
