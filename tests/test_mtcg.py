"""Tests for MTCG tilings, constraint graphs, and feature extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TilingError
from repro.geometry.rect import Rect
from repro.mtcg.graph import build_mtcg
from repro.mtcg.rules import FeatureType, RuleRect
from repro.mtcg.features import (
    diagonal_features,
    extract_topological_features,
    external_features,
    internal_features,
    segment_features,
)
from repro.mtcg.tiles import TileKind, horizontal_tiling, vertical_tiling

WINDOW = Rect(0, 0, 12, 12)
#: The paper's Fig. 8 "mountain" spirit: three towers on a common base line.
MOUNTAIN = [Rect(1, 1, 3, 5), Rect(5, 1, 7, 9), Rect(9, 1, 11, 5)]


def pattern_strategy():
    def build(raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(12, x0 + w), min(12, y0 + h))
            if r and not any(r.overlaps(o) for o in rects):
                rects.append(r)
        return rects

    return st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10), st.integers(1, 6), st.integers(1, 6)),
        max_size=6,
    ).map(build)


class TestTilings:
    def test_horizontal_covers(self):
        tiling = horizontal_tiling(MOUNTAIN, WINDOW)
        assert tiling.covers_window()
        assert len(tiling.blocks()) == 3

    def test_vertical_covers(self):
        tiling = vertical_tiling(MOUNTAIN, WINDOW)
        assert tiling.covers_window()

    def test_empty_window_single_space(self):
        tiling = horizontal_tiling([], WINDOW)
        assert len(tiling.tiles) == 1
        assert tiling.tiles[0].kind is TileKind.SPACE
        assert tiling.tiles[0].rect == WINDOW

    def test_full_window_single_block(self):
        tiling = horizontal_tiling([WINDOW], WINDOW)
        assert len(tiling.tiles) == 1
        assert tiling.tiles[0].is_block

    def test_space_strips_maximal_horizontally(self):
        tiling = horizontal_tiling([Rect(4, 4, 8, 8)], WINDOW)
        spaces = [t.rect for t in tiling.spaces()]
        # bottom strip spans the full width
        assert Rect(0, 0, 12, 4) in spaces
        assert Rect(0, 8, 12, 12) in spaces

    def test_vertical_is_transpose(self):
        h = horizontal_tiling([Rect(4, 4, 8, 8)], WINDOW)
        v = vertical_tiling([Rect(4, 4, 8, 8)], WINDOW)
        h_rects = sorted(t.rect for t in h.spaces())
        v_rects = sorted(
            Rect(t.rect.y0, t.rect.x0, t.rect.y1, t.rect.x1) for t in v.spaces()
        )
        assert h_rects == v_rects

    def test_overlapping_blocks_resolved(self):
        tiling = horizontal_tiling([Rect(0, 0, 6, 6), Rect(3, 3, 9, 9)], WINDOW)
        assert tiling.covers_window()

    def test_boundary_edge_count(self):
        tiling = horizontal_tiling([Rect(0, 0, 4, 4)], WINDOW)
        corner_block = tiling.blocks()[0]
        assert corner_block.boundary_edge_count(WINDOW) == 2

    @given(pattern_strategy())
    @settings(max_examples=40, deadline=None)
    def test_tilings_always_cover(self, rects):
        assert horizontal_tiling(rects, WINDOW).covers_window()
        assert vertical_tiling(rects, WINDOW).covers_window()


class TestGraphs:
    def test_axis_validation(self):
        tiling = horizontal_tiling([], WINDOW)
        with pytest.raises(TilingError):
            build_mtcg(tiling, "x")

    def test_ch_edges_point_right(self):
        tiling = horizontal_tiling([Rect(0, 4, 4, 8), Rect(8, 4, 12, 8)], WINDOW)
        graph = build_mtcg(tiling, "h")
        for edge in graph.edges:
            a, b = graph.tile(edge.source).rect, graph.tile(edge.target).rect
            assert a.x1 == b.x0

    def test_cv_edges_point_up(self):
        tiling = vertical_tiling([Rect(4, 0, 8, 4), Rect(4, 8, 8, 12)], WINDOW)
        graph = build_mtcg(tiling, "v")
        for edge in graph.edges:
            a, b = graph.tile(edge.source).rect, graph.tile(edge.target).rect
            assert a.y1 == b.y0

    def test_blocks_connected_through_space(self):
        tiling = horizontal_tiling([Rect(0, 4, 4, 8), Rect(8, 4, 12, 8)], WINDOW)
        graph = build_mtcg(tiling, "h")
        blocks = [t for t in tiling.tiles if t.is_block]
        left = min(blocks, key=lambda t: t.rect.x0)
        successors = graph.successors(left.index)
        assert successors, "left block must connect to the middle space"
        assert all(graph.tile(i).is_space for i in successors)

    def test_diagonal_edge_found(self):
        rects = [Rect(1, 1, 4, 4), Rect(6, 6, 9, 9)]
        tiling = horizontal_tiling(rects, WINDOW)
        graph = build_mtcg(tiling, "h", with_diagonals=True)
        diagonals = graph.diagonal_edges()
        block_diagonals = [
            e
            for e in diagonals
            if graph.tile(e.source).is_block and graph.tile(e.target).is_block
        ]
        assert len(block_diagonals) == 1

    def test_diagonal_blocked_by_interloper(self):
        rects = [Rect(1, 1, 4, 4), Rect(6, 6, 9, 9), Rect(4, 4, 6, 6)]
        tiling = horizontal_tiling(rects, WINDOW)
        graph = build_mtcg(tiling, "h", with_diagonals=True)
        src_tgt = [
            (graph.tile(e.source).rect, graph.tile(e.target).rect)
            for e in graph.diagonal_edges()
            if graph.tile(e.source).is_block
        ]
        assert (Rect(1, 1, 4, 4), Rect(6, 6, 9, 9)) not in src_tgt

    def test_diagonal_max_gap(self):
        rects = [Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)]
        tiling = horizontal_tiling(rects, WINDOW)
        near = build_mtcg(tiling, "h", with_diagonals=True, diagonal_max_gap=4)
        far = build_mtcg(tiling, "h", with_diagonals=True, diagonal_max_gap=None)
        near_blocks = [
            e for e in near.diagonal_edges() if near.tile(e.source).is_block
        ]
        far_blocks = [e for e in far.diagonal_edges() if far.tile(e.source).is_block]
        assert not near_blocks
        assert far_blocks


class TestFeatureExtraction:
    def test_mountain_feature_census(self):
        """The Fig. 8 example: internal, external and segment features."""
        features = extract_topological_features(MOUNTAIN, WINDOW, diagonal_max_gap=20)
        by_type = {ftype: [] for ftype in FeatureType}
        for feature in features:
            by_type[feature.feature_type].append(feature)
        # three isolated towers -> 3 internal features
        assert len(by_type[FeatureType.INTERNAL]) == 3
        # two gaps between towers -> 2 external features
        assert len(by_type[FeatureType.EXTERNAL]) == 2
        # bottom margin strip + top strip -> 2 segment features
        assert len(by_type[FeatureType.SEGMENT]) == 2

    def test_internal_feature_is_the_tile(self):
        features = extract_topological_features([Rect(4, 4, 8, 8)], WINDOW)
        internal = [f for f in features if f.feature_type is FeatureType.INTERNAL]
        assert internal == [
            RuleRect(FeatureType.INTERNAL, 4, 4, 4, 4, False)
        ]

    def test_external_measures_gap(self):
        rects = [Rect(0, 4, 5, 8), Rect(8, 4, 12, 8)]
        features = extract_topological_features(rects, WINDOW)
        external = [f for f in features if f.feature_type is FeatureType.EXTERNAL]
        assert any(f.width == 3 for f in external)

    def test_boundary_mark_set(self):
        features = extract_topological_features([Rect(0, 0, 4, 4)], WINDOW)
        internal = [f for f in features if f.feature_type is FeatureType.INTERNAL]
        # vertical tiling block touches two boundaries -> excluded; the
        # horizontal one too. A corner block yields no internal feature.
        assert not internal

    def test_diagonal_feature_gap_box(self):
        rects = [Rect(1, 1, 4, 4), Rect(6, 6, 9, 9)]
        features = extract_topological_features(rects, WINDOW)
        diagonal = [f for f in features if f.feature_type is FeatureType.DIAGONAL]
        assert any(f.width == 2 and f.height == 2 and f.dx == 4 and f.dy == 4 for f in diagonal)

    def test_touching_corner_diagonal_zero_size(self):
        rects = [Rect(1, 1, 4, 4), Rect(4, 4, 8, 8)]
        features = extract_topological_features(rects, WINDOW)
        diagonal = [f for f in features if f.feature_type is FeatureType.DIAGONAL]
        assert any(f.width == 0 and f.height == 0 for f in diagonal)

    def test_deterministic_and_sorted(self):
        features = extract_topological_features(MOUNTAIN, WINDOW)
        assert features == sorted(features)
        assert features == extract_topological_features(MOUNTAIN, WINDOW)

    def test_rule_rect_from_rect(self):
        rule = RuleRect.from_rect(FeatureType.SEGMENT, Rect(2, 3, 7, 9), WINDOW, True)
        assert rule.as_tuple() == (2, 3, 5, 6, 1)

    @given(pattern_strategy())
    @settings(max_examples=25, deadline=None)
    def test_extraction_never_crashes(self, rects):
        features = extract_topological_features(rects, WINDOW)
        for feature in features:
            assert feature.width >= 0 and feature.height >= 0
            assert 0 <= feature.dx <= 12 and 0 <= feature.dy <= 12


class TestGraphStructure:
    def test_constraint_graphs_are_dags(self):
        """Ch/Cv are constraint graphs: monotone in x/y, hence acyclic."""
        import networkx as nx

        tiling_h = horizontal_tiling(MOUNTAIN, WINDOW)
        tiling_v = vertical_tiling(MOUNTAIN, WINDOW)
        ch = build_mtcg(tiling_h, "h", with_diagonals=True).to_networkx()
        cv = build_mtcg(tiling_v, "v").to_networkx()
        assert nx.is_directed_acyclic_graph(ch)
        assert nx.is_directed_acyclic_graph(cv)

    def test_ch_spans_window_left_to_right(self):
        """Some path crosses the whole window in a constraint graph."""
        import networkx as nx

        tiling = horizontal_tiling(MOUNTAIN, WINDOW)
        graph = build_mtcg(tiling, "h")
        nxg = graph.to_networkx()
        left = [t.index for t in tiling.tiles if t.rect.x0 == WINDOW.x0]
        right = [t.index for t in tiling.tiles if t.rect.x1 == WINDOW.x1]
        assert any(
            nx.has_path(nxg, a, b) for a in left for b in right
        )

    def test_networkx_attributes(self):
        tiling = horizontal_tiling([Rect(4, 4, 8, 8)], WINDOW)
        nxg = build_mtcg(tiling, "h").to_networkx()
        kinds = {data["kind"] for _, data in nxg.nodes(data=True)}
        assert kinds == {"block", "space"}
