"""Tests for the batched, observable inference service (repro.serve)."""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import save_detector
from repro.errors import (
    ModelNotFoundError,
    QueueFullError,
    RequestTimeoutError,
    ServerClosedError,
)
from repro.serve import (
    BatchingConfig,
    HotspotServer,
    MetricsRegistry,
    MicroBatcher,
    ModelRegistry,
    ServeClient,
    ServeClientError,
    ServeService,
    ServerConfig,
)


# ======================================================================
# metrics
# ======================================================================


class TestMetrics:
    def test_counter_and_labels_render(self):
        metrics = MetricsRegistry()
        requests = metrics.counter("requests_total", "Requests.", labels=("endpoint",))
        requests.labels("/v1/predict").inc()
        requests.labels("/v1/predict").inc()
        requests.labels("/healthz").inc()
        text = metrics.render()
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{endpoint="/v1/predict"} 2' in text
        assert 'repro_requests_total{endpoint="/healthz"} 1' in text

    def test_histogram_buckets_cumulative(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0)).labels()
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        text = metrics.render()
        assert 'repro_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="1"} 3' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 4' in text
        assert 'repro_latency_seconds_count 4' in text

    def test_quantiles(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("q").labels()
        for value in range(1, 101):
            hist.observe(value / 100.0)
        assert hist.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        assert hist.quantile(0.99) == pytest.approx(0.99, abs=0.02)

    def test_duck_typed_sink_interface(self):
        metrics = MetricsRegistry()
        metrics.observe("detector_fit_seconds", 1.25)
        metrics.increment("things_total")
        snapshot = metrics.snapshot()
        assert snapshot["repro_detector_fit_seconds"]["count"] == 1
        assert snapshot["repro_things_total"] == 1

    def test_counters_reject_decrease(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError):
            metrics.counter("c").labels().inc(-1)

    def test_stats_empty_histogram_has_none_quantiles(self):
        hist = MetricsRegistry().histogram("empty").labels()
        stats = hist.stats()
        assert stats["count"] == 0
        assert stats["sum"] == 0.0
        assert stats["p50"] is None and stats["p99"] is None

    def test_stats_single_sample_every_quantile(self):
        hist = MetricsRegistry().histogram("one").labels()
        hist.observe(0.123)
        stats = hist.stats((0.0, 0.5, 0.99, 1.0))
        assert stats["count"] == 1
        for key in ("p0", "p50", "p99", "p100"):
            assert stats[key] == pytest.approx(0.123)

    def test_stats_rejects_out_of_range_quantile(self):
        hist = MetricsRegistry().histogram("bad").labels()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.stats((1.5,))

    def test_snapshot_empty_histogram_keys_stable(self):
        metrics = MetricsRegistry()
        metrics.histogram("h").labels()
        entry = metrics.snapshot()["repro_h"]
        assert entry["count"] == 0
        assert entry["p50"] is None and entry["p99"] is None

    def test_concurrent_observations_stay_consistent(self):
        hist = MetricsRegistry().histogram("hammer").labels()
        counter = MetricsRegistry().counter("hits").labels()

        def work():
            for _ in range(1000):
                hist.observe(0.001)
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = hist.stats()
        assert stats["count"] == 8000
        assert stats["sum"] == pytest.approx(8.0)
        assert counter.value == 8000


# ======================================================================
# micro-batching engine (no model needed)
# ======================================================================


def _echo_evaluate(group, requests):
    """Default batch function: each item maps to (group, item)."""
    return [[(group, item) for item in items] for items, _context in requests]


class TestMicroBatcher:
    def test_flushes_on_batch_size(self):
        batches = []

        def evaluate(group, requests):
            batches.append(sum(len(items) for items, _ in requests))
            return [[0] * len(items) for items, _ in requests]

        batcher = MicroBatcher(
            evaluate,
            BatchingConfig(max_batch_clips=4, max_delay_s=5.0, workers=1),
        ).start()
        try:
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, "m", [i], timeout=10.0)
                    for i in range(4)
                ]
                started = time.monotonic()
                for future in futures:
                    future.result(timeout=5.0)
                elapsed = time.monotonic() - started
            # Flushed by size, far before the 5 s window expired.
            assert elapsed < 2.0
            assert max(batches) == 4
        finally:
            batcher.close()

    def test_flushes_on_deadline(self):
        batcher = MicroBatcher(
            _echo_evaluate,
            BatchingConfig(max_batch_clips=100, max_delay_s=0.02, workers=1),
        ).start()
        try:
            started = time.monotonic()
            result = batcher.submit("m", ["only"], timeout=5.0)
            elapsed = time.monotonic() - started
            assert result == [("m", "only")]
            # One lone clip must not wait for 99 batch-mates.
            assert elapsed < 1.0
        finally:
            batcher.close()

    def test_backpressure_queue_full(self):
        release = threading.Event()
        entered = threading.Event()

        def evaluate(group, requests):
            entered.set()
            release.wait(10.0)
            return [[0] * len(items) for items, _ in requests]

        batcher = MicroBatcher(
            evaluate,
            BatchingConfig(
                max_batch_clips=8, max_delay_s=0.0, max_queue_clips=8, workers=1
            ),
        ).start()
        try:
            pool = ThreadPoolExecutor(2)
            blocked = pool.submit(batcher.submit, "m", [1], timeout=10.0)
            assert entered.wait(5.0)  # worker is busy inside evaluate
            queued = pool.submit(batcher.submit, "m", list(range(8)), timeout=10.0)
            deadline = time.monotonic() + 5.0
            while batcher.queue_depth() < 8 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert batcher.queue_depth() == 8
            with pytest.raises(QueueFullError) as excinfo:
                batcher.submit("m", [99])
            assert "queue full" in str(excinfo.value)
            release.set()
            blocked.result(5.0)
            queued.result(5.0)
            pool.shutdown()
        finally:
            release.set()
            batcher.close()

    def test_request_timeout(self):
        release = threading.Event()

        def evaluate(group, requests):
            release.wait(10.0)
            return [[0] * len(items) for items, _ in requests]

        batcher = MicroBatcher(
            evaluate, BatchingConfig(max_delay_s=0.0, workers=1)
        ).start()
        try:
            with ThreadPoolExecutor(1) as pool:
                blocked = pool.submit(batcher.submit, "m", [1], timeout=10.0)
                time.sleep(0.05)  # let the worker pick it up
                with pytest.raises(RequestTimeoutError):
                    batcher.submit("m", [2], timeout=0.1)
                release.set()
                blocked.result(5.0)
        finally:
            release.set()
            batcher.close()

    def test_graceful_close_drains_queue(self):
        evaluated = []

        def evaluate(group, requests):
            time.sleep(0.01)
            evaluated.append(sum(len(items) for items, _ in requests))
            return [[0] * len(items) for items, _ in requests]

        batcher = MicroBatcher(
            evaluate,
            BatchingConfig(max_batch_clips=2, max_delay_s=0.5, workers=1),
        ).start()
        pool = ThreadPoolExecutor(6)
        futures = [pool.submit(batcher.submit, "m", [i], timeout=10.0) for i in range(6)]
        time.sleep(0.02)
        batcher.close(drain=True)
        for future in futures:
            future.result(timeout=5.0)  # every request completed, none dropped
        assert sum(evaluated) == 6
        with pytest.raises(ServerClosedError):
            batcher.submit("m", [7])
        pool.shutdown()

    def test_groups_never_mix(self):
        seen_groups = []

        def evaluate(group, requests):
            seen_groups.append((group, sum(len(i) for i, _ in requests)))
            return [[group] * len(items) for items, _ in requests]

        batcher = MicroBatcher(
            evaluate,
            BatchingConfig(max_batch_clips=16, max_delay_s=0.05, workers=1),
        ).start()
        try:
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, name, [1, 2], timeout=10.0)
                    for name in ("a", "b", "a", "b")
                ]
                results = [f.result(5.0) for f in futures]
            assert results[0] == ["a", "a"] and results[1] == ["b", "b"]
            # Every evaluated batch holds exactly one group.
            assert all(group in ("a", "b") for group, _ in seen_groups)
        finally:
            batcher.close()

    def test_evaluate_error_propagates_to_submitter(self):
        def evaluate(group, requests):
            raise RuntimeError("kaboom")

        batcher = MicroBatcher(
            evaluate, BatchingConfig(max_delay_s=0.0, workers=1)
        ).start()
        try:
            with pytest.raises(RuntimeError, match="kaboom"):
                batcher.submit("m", [1], timeout=5.0)
        finally:
            batcher.close()


# ======================================================================
# model registry
# ======================================================================


@pytest.fixture(scope="module")
def trained(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture(scope="module")
def model_file(trained, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    save_detector(trained, path, name="test-model")
    return path


class TestModelRegistry:
    def test_empty_registry_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ModelNotFoundError):
            registry.get()

    def test_load_and_default_lookup(self, model_file):
        registry = ModelRegistry()
        entry = registry.load(model_file)
        assert entry.name == "default"
        assert registry.get() is entry
        assert registry.get("default") is entry
        with pytest.raises(ModelNotFoundError):
            registry.get("nope")

    def test_multiple_versions_side_by_side(self, trained, model_file, tmp_path):
        other = tmp_path / "other.npz"
        save_detector(trained, other)
        registry = ModelRegistry()
        registry.load(model_file, "v1")
        registry.load(other, "v2")
        assert registry.names() == ["v1", "v2"]
        assert registry.get("v1").path == model_file
        assert registry.get("v2").path == other

    def test_hot_reload_on_file_change(self, trained, small_benchmark, tmp_path):
        path = tmp_path / "hot.npz"
        save_detector(trained, path)
        registry = ModelRegistry(poll_interval=0.0)
        first = registry.load(path, "m")
        assert registry.get("m") is first  # unchanged file -> same entry

        # Deploy a new version by overwriting the archive.
        retuned = HotspotDetector(trained.config.at_threshold(0.42))
        retuned.model_ = trained.model_
        retuned.feedback_ = trained.feedback_
        save_detector(retuned, path)
        import os

        os.utime(path, (time.time() + 5, time.time() + 5))

        second = registry.get("m")
        assert second is not first
        assert second.reloads == first.reloads + 1
        assert second.detector.config.decision_threshold == pytest.approx(0.42)
        probe = small_benchmark.training.hotspots()[:3]
        assert np.allclose(
            first.detector.margins(probe), second.detector.margins(probe)
        )

    def test_registry_metadata_surfaced(self, model_file):
        registry = ModelRegistry()
        registry.load(model_file, "meta")
        (description,) = registry.describe()
        assert description["name"] == "meta"
        assert description["kernels"] >= 1
        assert description["registry"]["name"] == "test-model"
        assert description["spec"]["clip_side"] == 4800


# ======================================================================
# HTTP server + client (ephemeral port)
# ======================================================================


@pytest.fixture(scope="module")
def server(model_file):
    service = ServeService(
        batching=BatchingConfig(max_delay_s=0.002, max_batch_clips=64, workers=2)
    )
    service.load_model(model_file)
    with HotspotServer(service, ServerConfig(host="127.0.0.1", port=0)) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url)


class TestHttpApi:
    def test_healthz_ok(self, client):
        document = client.healthz()
        assert document["status"] == "ok"
        assert document["models"] == ["default"]

    def test_healthz_unhealthy_without_model(self):
        with HotspotServer(ServeService(), ServerConfig(port=0)) as empty:
            probe = ServeClient(empty.url)
            status, document = probe.health_document()
            assert status == 503
            assert document["status"] == "unavailable"
            with pytest.raises(ServeClientError):
                probe.healthz()

    def test_predict_matches_detector(self, client, trained, small_benchmark):
        clips = (
            small_benchmark.training.hotspots()[:8]
            + small_benchmark.training.non_hotspots()[:8]
        )
        result = client.predict(clips)
        assert np.array_equal(result.flags, trained.predict_clips(clips))
        assert np.allclose(result.margins, trained.margins(clips))

    def test_predict_custom_threshold(self, client, trained, small_benchmark):
        clips = small_benchmark.training.hotspots()[:6]
        result = client.predict(clips, threshold=0.5)
        assert result.threshold == pytest.approx(0.5)
        assert np.array_equal(result.flags, trained.predict_clips(clips, 0.5))

    def test_concurrent_requests_batched_correctly(
        self, client, server, trained, small_benchmark
    ):
        clips = small_benchmark.training.hotspots()[:4]
        expected = trained.predict_clips(clips)

        def one_call(_):
            return ServeClient(server.url).predict(clips).flags

        with ThreadPoolExecutor(8) as pool:
            for flags in pool.map(one_call, range(16)):
                assert np.array_equal(flags, expected)

    def test_scan_full_layout(self, client, trained, small_benchmark):
        rects = small_benchmark.testing.layout.layer(1).rects
        response = client.scan(rects, layer=1)
        reference = trained.detect(small_benchmark.testing.layout)
        assert response["candidates"] == reference.extraction.candidate_count
        assert response["count"] == reference.report_count
        reported = {tuple(item["core"]) for item in response["reports"]}
        expected = {
            (c.core.x0, c.core.y0, c.core.x1, c.core.y1) for c in reference.reports
        }
        assert reported == expected

    def test_models_endpoint(self, client):
        document = client.models()
        (model,) = document["models"]
        assert model["name"] == "default"
        assert model["kernels"] >= 1

    def test_metrics_exposition(self, client):
        client.healthz()
        text = client.metrics_text()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert 'repro_serve_requests_total{endpoint="/healthz",status="200"}' in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert "repro_serve_request_seconds_bucket" in text
        assert "repro_serve_batch_size_clips_bucket" in text
        assert "repro_serve_model_loaded_timestamp_seconds" in text

    def test_malformed_payload_structured_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.predict_payload({"clips": "not-a-list"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"

    def test_wrong_window_size_rejected(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.predict_payload(
                {"clips": [{"window": [0, 0, 100, 100], "rects": []}]}
            )
        assert excinfo.value.status == 400

    def test_unknown_model_404(self, client, small_benchmark):
        clips = small_benchmark.training.hotspots()[:1]
        with pytest.raises(ServeClientError) as excinfo:
            client.predict(clips, model="missing")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "model_not_found"

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeClientError):
            client._request_ok("GET", "/nope")


class TestRequestId:
    def test_client_id_echoed_in_envelope(self, client, small_benchmark):
        clips = small_benchmark.training.hotspots()[:2]
        result = client.predict(clips, request_id="req-abc-123")
        assert result.request_id == "req-abc-123"

    def test_id_generated_when_absent(self, client, small_benchmark):
        clips = small_benchmark.training.hotspots()[:2]
        first = client.predict(clips)
        second = client.predict(clips)
        assert first.request_id and second.request_id
        assert first.request_id != second.request_id

    def test_header_echoed_on_response(self, server, small_benchmark):
        import http.client

        clips = small_benchmark.training.hotspots()[:1]
        from repro.serve.protocol import encode_clip

        body = json.dumps({"clips": [encode_clip(clip) for clip in clips]})
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/predict",
                body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Request-Id": "hdr-42",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert response.headers.get("X-Request-Id") == "hdr-42"
            assert payload["request_id"] == "hdr-42"
        finally:
            conn.close()

    def test_error_envelope_carries_id(self, client):
        status, decoded, _, _ = client._request(
            "POST",
            "/v1/predict",
            {"clips": "not-a-list"},
            request_id="err-7",
        )
        assert status == 400
        assert decoded["request_id"] == "err-7"
        assert decoded["error"]["code"] == "bad_request"

    def test_scan_envelope_carries_id(self, client, small_benchmark):
        rects = list(small_benchmark.testing.layout.layer(1).rects)[:50]
        response, _ = client._request_ok(
            "POST",
            "/v1/scan",
            {
                "rects": [[r.x0, r.y0, r.x1, r.y1] for r in rects],
                "layer": 1,
            },
            request_id="scan-9",
        )
        assert response["request_id"] == "scan-9"


class TestBackpressureAndShutdown:
    def _blocked_server(self, model_file, **batching):
        """A server whose evaluation is gated on an Event we control.

        ``entered`` fires once a worker is inside the gated evaluate,
        so tests can build a known queue state deterministically.
        """
        service = ServeService(batching=BatchingConfig(**batching))
        service.load_model(model_file)
        release = threading.Event()
        entered = threading.Event()
        inner = service.batcher.evaluate

        def gated(group, requests):
            entered.set()
            release.wait(15.0)
            return inner(group, requests)

        service.batcher.evaluate = gated
        server = HotspotServer(service, ServerConfig(port=0)).start()
        return server, release, entered

    def test_full_queue_yields_429(self, model_file, small_benchmark):
        server, release, entered = self._blocked_server(
            model_file,
            max_batch_clips=4,
            max_delay_s=0.0,
            max_queue_clips=4,
            workers=1,
        )
        try:
            clips = small_benchmark.training.hotspots()[:4]
            pool = ThreadPoolExecutor(4)
            # First request: wait for the (only) worker to pick it up and
            # block inside evaluate — the queue is empty again afterwards.
            first = pool.submit(
                ServeClient(server.url, timeout=30.0).predict, clips
            )
            assert entered.wait(10.0), "worker never picked up the batch"
            # Second request: fills the queue to its 4-clip limit while the
            # worker stays occupied, so the state below is stable.
            second = pool.submit(
                ServeClient(server.url, timeout=30.0).predict, clips
            )
            deadline = time.monotonic() + 10.0
            while (
                server.service.batcher.queue_depth() < 4
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert server.service.batcher.queue_depth() == 4
            # retries=0: the queue stays full while the worker is blocked,
            # so retrying would only sleep through Retry-After and re-fail.
            with pytest.raises(ServeClientError) as excinfo:
                ServeClient(server.url, retries=0).predict(clips)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue_full"
            release.set()
            for future in (first, second):
                future.result(timeout=15.0)
            pool.shutdown()
        finally:
            release.set()
            server.stop()

    def test_request_timeout_yields_504(self, model_file, small_benchmark):
        server, release, _entered = self._blocked_server(
            model_file, max_delay_s=0.0, workers=1, default_timeout_s=0.15
        )
        try:
            clips = small_benchmark.training.hotspots()[:2]
            with pytest.raises(ServeClientError) as excinfo:
                ServeClient(server.url, timeout=30.0).predict(clips)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "timeout"
        finally:
            release.set()
            server.stop()

    def test_graceful_shutdown_drains_in_flight(
        self, model_file, trained, small_benchmark
    ):
        server, release, entered = self._blocked_server(
            model_file, max_batch_clips=4, max_delay_s=0.01, workers=1
        )
        clips = small_benchmark.training.hotspots()[:3]
        expected = trained.predict_clips(clips)
        pool = ThreadPoolExecutor(3)
        in_flight = [
            pool.submit(ServeClient(server.url, timeout=30.0).predict, clips)
            for _ in range(3)
        ]
        # Only stop once all three requests are demonstrably in flight:
        # the single worker blocked on one 3-clip batch, the other two
        # requests (6 clips) waiting in the queue.
        assert entered.wait(10.0), "worker never picked up a batch"
        deadline = time.monotonic() + 10.0
        while (
            server.service.batcher.queue_depth() < 6
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert server.service.batcher.queue_depth() == 6

        stopper = threading.Thread(target=server.stop)
        release.set()
        stopper.start()
        # Every request that was in flight at shutdown still gets its answer.
        for future in in_flight:
            assert np.array_equal(future.result(timeout=15.0).flags, expected)
        stopper.join(timeout=15.0)
        assert not stopper.is_alive()
        pool.shutdown()
        # And the batcher now refuses new work.
        with pytest.raises(ServerClosedError):
            server.service.batcher.submit("default", clips)


# ======================================================================
# CLI integration: `repro serve` / `repro client`
# ======================================================================


class TestCliServe:
    def test_serve_process_sigterm_drains(self, model_file, small_benchmark):
        """`repro serve --model model.npz` serves predictions and exits
        cleanly on SIGTERM."""
        import os
        import signal
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        repo_src = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                "--model",
                str(model_file),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            url = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if "serving on " in line:
                    url = line.split("serving on ", 1)[1].split()[0]
                    break
            assert url, "server never reported its URL"
            client = ServeClient(url, timeout=30.0)
            assert client.healthz()["status"] == "ok"
            clips = small_benchmark.training.hotspots()[:3]
            result = client.predict(clips)
            assert len(result.flags) == 3
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()

    def test_client_subcommand(self, server, small_benchmark, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.layout.io import save_clipset_gds

        assert cli_main(["client", "--url", server.url, "health"]) == 0
        assert cli_main(["client", "--url", server.url, "models"]) == 0
        assert cli_main(["client", "--url", server.url, "metrics"]) == 0
        capsys.readouterr()

        clips_path = tmp_path / "clips.gds"
        save_clipset_gds(small_benchmark.training, clips_path)
        assert (
            cli_main(
                [
                    "client",
                    "--url",
                    server.url,
                    "predict",
                    "--clips",
                    str(clips_path),
                    "--limit",
                    "4",
                    "--json",
                ]
            )
            == 0
        )
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert payload["clips"] == 4
        assert len(payload["flags"]) == 4


# ======================================================================
# service-level (no sockets)
# ======================================================================


class TestServeService:
    def test_predict_clips_inprocess(self, model_file, trained, small_benchmark):
        service = ServeService(batching=BatchingConfig(max_delay_s=0.0))
        service.load_model(model_file)
        service.start()
        try:
            clips = small_benchmark.training.hotspots()[:5]
            flags, margins, threshold = service.predict_clips(clips)
            assert np.array_equal(flags, trained.predict_clips(clips))
            assert np.allclose(margins, trained.margins(clips))
            assert threshold == trained.config.decision_threshold
        finally:
            service.close()

    def test_detector_feeds_metrics_through_registry(
        self, model_file, small_benchmark
    ):
        service = ServeService()
        entry = service.load_model(model_file)
        entry.detector.detect(small_benchmark.testing.layout)
        snapshot = service.metrics.snapshot()
        assert snapshot["repro_detector_detect_seconds"]["count"] == 1
