"""Property tests for the paper's extraction and removal guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ExtractionConfig, RemovalConfig
from repro.core.extraction import extract_candidate_clips
from repro.core.removal import remove_redundant_clips
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipSpec
from repro.layout.layout import Layout

SPEC = ClipSpec(core_side=1200, clip_side=4800)
#: Requirements disabled: pure anchoring behaviour under test.
OPEN = ExtractionConfig(
    min_core_density=0.0, min_polygon_count=0, max_boundary_distance=100_000
)


def rect_strategy():
    return st.lists(
        st.tuples(
            st.integers(0, 12),
            st.integers(0, 12),
            st.integers(1, 30),
            st.integers(1, 4),
        ),
        min_size=1,
        max_size=8,
    ).map(
        lambda raw: [
            Rect(
                10_000 + x * 700,
                10_000 + y * 700,
                10_000 + x * 700 + w * 100,
                10_000 + y * 700 + h * 100,
            )
            for x, y, w, h in raw
        ]
    )


class TestExtractionCoverage:
    @given(rect_strategy())
    @settings(max_examples=25, deadline=None)
    def test_every_polygon_included_by_some_clip(self, rects):
        """Section III-E's claim: with the requirements met, each polygon
        is included by at least one layout clip."""
        layout = Layout()
        kept = []
        for rect in rects:
            if not any(rect.overlaps(k) for k in kept):
                layout.add_rect(1, rect)
                kept.append(rect)
        report = extract_candidate_clips(layout, SPEC, OPEN)
        for rect in kept:
            covered = any(
                clip.window.contains_rect(rect) or clip.window.overlaps(rect)
                for clip in report.clips
            )
            assert covered, rect

    @given(rect_strategy())
    @settings(max_examples=25, deadline=None)
    def test_anchors_deduplicated(self, rects):
        layout = Layout()
        for rect in rects:
            if not any(rect.overlaps(k) for k in layout.layer(1).rects):
                layout.add_rect(1, rect)
        report = extract_candidate_clips(layout, SPEC, OPEN)
        anchors = [(c.core.x0, c.core.y0) for c in report.clips]
        assert len(anchors) == len(set(anchors))

    def test_funnel_statistics_consistent(self):
        layout = Layout()
        for i in range(10):
            layout.add_rect(1, Rect(10_000 + i * 2000, 10_000, 10_100 + i * 2000, 11_500))
        config = ExtractionConfig(min_polygon_count=2)
        report = extract_candidate_clips(layout, SPEC, config)
        assert (
            report.candidate_count
            + report.rejected_density
            + report.rejected_count
            + report.rejected_boundary
            == report.anchor_count
        )


def flagged_strategy():
    """Random strongly-overlapping report sets around one neighbourhood."""
    return st.lists(
        st.tuples(st.integers(0, 16), st.integers(0, 16)),
        min_size=1,
        max_size=12,
    ).map(
        lambda raw: [
            Rect(20_000 + x * 150, 20_000 + y * 150, 21_200 + x * 150, 21_200 + y * 150)
            for x, y in raw
        ]
    )


class TestRemovalCoverage:
    @given(flagged_strategy())
    @settings(max_examples=25, deadline=None)
    def test_removal_preserves_geometry_coverage(self, cores):
        """Geometry under a removed report's core stays covered.

        The paper's guarantee: redundant clip removal reduces the false
        alarm "without sacrificing the accuracy" — an actual hotspot lives
        on *geometry*, so the invariant is that every polygon that was
        inside some input core remains inside (or overlapping) some output
        core.  (Clip shifting may legitimately move cores toward the
        polygons' centre of gravity, Fig. 12(e).)
        """
        polys = [
            Rect(core.center.x - 100, core.center.y - 100, core.center.x + 100, core.center.y + 100)
            for core in cores
        ]
        reports = [
            Clip.build(SPEC.clip_for_core(core), SPEC, polys) for core in cores
        ]
        factory = lambda core: Clip.build(SPEC.clip_for_core(core), SPEC, polys)
        kept = remove_redundant_clips(reports, SPEC, RemovalConfig(), factory)
        assert kept, "removal must never empty a non-empty report list"
        for poly, core in zip(polys, cores):
            was_covered = any(c.contains_rect(poly) for c in cores)
            if not was_covered:
                continue
            assert any(k.core.overlaps(poly) for k in kept), poly

    @given(flagged_strategy())
    @settings(max_examples=25, deadline=None)
    def test_removal_never_grows_small_sets(self, cores):
        if len(cores) > 4:
            return  # reframing may legitimately re-tile large regions
        shared = [Rect(20_500, 20_500, 20_700, 20_700)]
        reports = [
            Clip.build(SPEC.clip_for_core(core), SPEC, shared) for core in cores
        ]
        factory = lambda core: Clip.build(SPEC.clip_for_core(core), SPEC, shared)
        kept = remove_redundant_clips(reports, SPEC, RemovalConfig(), factory)
        assert len(kept) <= len(reports)
