"""Differential harness: caching must never change a single bit.

Every test here runs the same detection twice-or-more under different
cache states (off / cold / warm / incremental, thread / process
backends) and asserts the *complete* observable output is identical:
the hotspot report set, the per-clip margins, and the extraction
funnel counts.  A cache that changes any of these is a correctness
bug, however fast it is.

One detector is fitted per module and shared; tests attach and detach
caches around it (``attach_cache(None)`` restores the uncached state).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cache import HotspotCache
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import save_detector
from repro.geometry.rect import Rect
from repro.layout.io import save_layout_gds
from repro.layout.layout import Layout
from repro.resilience import faults
from repro.work import ScanOptions


@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture()
def detached(fitted):
    """Hand the shared detector out cache-free; detach again afterwards."""
    fitted.attach_cache(None)
    yield fitted
    fitted.attach_cache(None)


def signature(detector, report):
    """Everything a scan observably produced, in comparable form."""
    cores = tuple(
        (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
        for clip in report.reports
    )
    extraction = report.extraction
    funnel = (
        extraction.anchor_count,
        extraction.rejected_density,
        extraction.rejected_count,
        extraction.rejected_boundary,
        len(extraction.clips),
    )
    margins = detector.margins(extraction.clips)
    return cores, funnel, margins


def assert_identical(left, right):
    assert left[0] == right[0]  # hotspot report set
    assert left[1] == right[1]  # extraction funnel counts
    assert np.array_equal(left[2], right[2])  # margins, bit-identical


def copy_layout(layout, layer, extra=None):
    out = Layout()
    for rect in layout.layer(layer).rects:
        out.add_rect(layer, rect)
    if extra is not None:
        out.add_rect(layer, extra)
    return out


class TestCacheModesBitIdentical:
    def test_off_cold_warm_thread(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        detached.attach_cache(HotspotCache(directory=tmp_path / "cache"))
        cold_report = detached.detect(layout)
        cold = signature(detached, cold_report)
        warm_report = detached.detect(layout)
        warm = signature(detached, warm_report)

        assert_identical(baseline, cold)
        assert_identical(baseline, warm)

        assert cold_report.cache_stats is not None
        assert cold_report.cache_stats["margin_misses"] > 0
        assert warm_report.cache_stats["margin_misses"] == 0
        assert warm_report.cache_stats["margin_hits"] > 0

    def test_off_cold_warm_process(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        options = ScanOptions(workers=2, cache_dir=tmp_path / "cache")
        baseline = signature(detached, detached.detect(layout, work=ScanOptions(workers=2)))

        detached.attach_cache(HotspotCache(directory=tmp_path / "cache"))
        cold = signature(detached, detached.detect(layout, work=options))
        warm = signature(detached, detached.detect(layout, work=options))

        assert_identical(baseline, cold)
        assert_identical(baseline, warm)

    def test_thread_and_process_backends_agree(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        thread = signature(detached, detached.detect(layout))
        process = signature(
            detached, detached.detect(layout, work=ScanOptions(workers=2))
        )
        assert_identical(thread, process)

    def test_memory_only_cache_thread(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))
        detached.attach_cache(HotspotCache())
        assert_identical(baseline, signature(detached, detached.detect(layout)))
        assert_identical(baseline, signature(detached, detached.detect(layout)))


class TestIncrementalBitIdentical:
    def test_noop_edit_reuses_everything(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        options = ScanOptions(
            workers=2,
            journal_dir=tmp_path / "journal",
            incremental=True,
            cache_dir=tmp_path / "cache",
        )
        first = detached.detect(layout, work=options)
        assert first.shards_reused == 0
        # Same geometry, rebuilt object: every shard hash matches.
        rebuilt = copy_layout(layout, 1)
        second = detached.detect(rebuilt, work=options)
        assert second.shards_total > 0
        assert second.shards_reused == second.shards_total
        assert_identical(
            signature(detached, first), signature(detached, second)
        )

    def test_real_edit_recomputes_only_touched_shards(
        self, detached, small_benchmark, tmp_path
    ):
        layout = small_benchmark.testing.layout
        options = ScanOptions(
            workers=2,
            journal_dir=tmp_path / "journal",
            incremental=True,
        )
        detached.detect(layout, work=options)

        box = layout.bbox(1)
        edit = Rect(box.x0 + 2000, box.y0 + 2000, box.x0 + 2400, box.y0 + 2600)
        edited = copy_layout(layout, 1, extra=edit)

        incremental = detached.detect(edited, work=options)
        assert 0 < incremental.shards_reused < incremental.shards_total

        fresh = detached.detect(edited)  # thread backend, no journal
        assert_identical(
            signature(detached, fresh), signature(detached, incremental)
        )

    def test_incremental_requires_journal_dir(self, detached, small_benchmark):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            detached.detect(
                small_benchmark.testing.layout,
                work=ScanOptions(workers=2, incremental=True),
            )


# ----------------------------------------------------------------------
# exact vs fast: the vectorized mode against its oracle
# ----------------------------------------------------------------------
def margins_within_bound(detector, exact_margins, fast_margins):
    """Fast margins must sit within the documented scale-ulp bound."""
    from repro.svm.fastpath import MAX_ULP_DRIFT, margin_drift_ulps

    scale = max(
        kernel.model.fast_state().scale for kernel in detector.model_.kernels
    )
    drift = margin_drift_ulps(
        np.asarray(exact_margins), np.asarray(fast_margins), scale
    )
    assert drift <= MAX_ULP_DRIFT, f"margin drift {drift} ulps > {MAX_ULP_DRIFT}"


def assert_equivalent(detector, exact, fast):
    """The exact-vs-fast contract: same decisions, ulp-bounded margins."""
    assert exact[0] == fast[0]  # hotspot report set
    assert exact[1] == fast[1]  # extraction funnel counts
    assert exact[2].shape == fast[2].shape
    margins_within_bound(detector, exact[2], fast[2])


class TestExactVsFastDifferential:
    """Fast mode must reproduce exact mode's decisions on every backend.

    Margins are allowed to drift inside the documented scale-ulp bound
    (``repro.svm.fastpath.MAX_ULP_DRIFT``); hotspot sets and funnel
    counts must be identical.
    """

    def _mode_signature(self, detector, layout, mode, **detect_kwargs):
        previous = detector.config.features.compute
        detector.set_compute(mode)
        try:
            return signature(detector, detector.detect(layout, **detect_kwargs))
        finally:
            detector.set_compute(previous)

    def test_thread_backend(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        exact = self._mode_signature(detached, layout, "exact")
        fast = self._mode_signature(detached, layout, "fast")
        assert_equivalent(detached, exact, fast)
        assert exact[0]  # the comparison covers real hotspots

    def test_fast_mode_is_reproducible(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        first = self._mode_signature(detached, layout, "fast")
        second = self._mode_signature(detached, layout, "fast")
        assert_identical(first, second)  # fast vs fast is bit-identical

    def test_process_backend_via_scan_options(self, detached, small_benchmark):
        """ScanOptions.compute switches the mode for one scan and
        restores the detector's configured mode afterwards."""
        layout = small_benchmark.testing.layout
        exact = signature(
            detached, detached.detect(layout, work=ScanOptions(workers=2))
        )
        report = detached.detect(
            layout, work=ScanOptions(workers=2, compute="fast")
        )
        assert report.compute == "fast"
        assert detached.config.features.compute == "exact"  # restored
        detached.set_compute("fast")
        try:
            fast = signature(detached, report)
        finally:
            detached.set_compute("exact")
        assert_equivalent(detached, exact, fast)

    def test_process_matches_thread_in_fast_mode(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        thread = self._mode_signature(detached, layout, "fast")
        process = self._mode_signature(
            detached, layout, "fast", work=ScanOptions(workers=2)
        )
        assert_identical(thread, process)

    def test_fleet_backend_adopts_coordinator_mode(
        self, fitted, small_benchmark, tmp_path
    ):
        """A worker loaded in exact mode re-homes onto a fast coordinator:
        it must adopt the mode during the handshake (the fingerprint
        embeds it) and the fleet scan must match a local fast scan."""
        import threading

        from repro.core.persist import load_detector
        from repro.fleet import FleetCoordinator, FleetOptions, FleetWorker

        layout = small_benchmark.testing.layout
        save_detector(fitted, tmp_path / "model.npz", name="diff")
        coordinator_detector = load_detector(tmp_path / "model.npz")
        coordinator_detector.set_compute("fast")
        worker_detector = load_detector(tmp_path / "model.npz")
        assert worker_detector.config.features.compute == "exact"

        coordinator = FleetCoordinator(
            coordinator_detector, layout, options=FleetOptions()
        )
        with coordinator:
            worker = FleetWorker(
                coordinator.url, worker_detector, layout, "exact-loaded"
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            assert coordinator.wait(timeout=300), coordinator.status()
            thread.join(timeout=30)
            scan = coordinator.result()
        assert worker_detector.config.features.compute == "fast"  # adopted

        fleet_report = coordinator_detector.detect(layout, scan=scan)
        local_report = coordinator_detector.detect(layout)
        assert fleet_report.compute == "fast"
        fleet = signature(coordinator_detector, fleet_report)
        local = signature(coordinator_detector, local_report)
        assert_identical(fleet, local)


class TestComputeModeCacheSplit:
    """Warm margins of one mode must never be served to the other.

    The margin-cache namespace embeds the compute mode via
    ``model_fingerprint``; the feature namespace deliberately does not
    (extraction is bit-identical across modes), so switching modes keeps
    feature hits and loses only margin hits.
    """

    def test_exact_cache_not_served_to_fast_and_vice_versa(
        self, detached, small_benchmark, tmp_path
    ):
        layout = small_benchmark.testing.layout
        detached.attach_cache(HotspotCache(directory=tmp_path / "cache"))

        cold_exact = detached.detect(layout)
        warm_exact = detached.detect(layout)
        assert warm_exact.cache_stats["margin_hits"] > 0
        assert warm_exact.cache_stats["margin_misses"] == 0

        detached.set_compute("fast")
        try:
            cold_fast = detached.detect(layout)
            # The warm exact margins are invisible to the fast scan ...
            assert cold_fast.cache_stats["margin_hits"] == 0
            assert cold_fast.cache_stats["margin_misses"] > 0
            # ... but the feature namespace is shared across modes.
            assert cold_fast.cache_stats["feature_hits"] > 0
            assert cold_fast.cache_stats["feature_misses"] == 0
            warm_fast = detached.detect(layout)
            assert warm_fast.cache_stats["margin_hits"] > 0
            assert warm_fast.cache_stats["margin_misses"] == 0
        finally:
            detached.set_compute("exact")

        # Fast margins did not poison the exact namespace either.
        still_warm_exact = detached.detect(layout)
        assert still_warm_exact.cache_stats["margin_hits"] > 0
        assert still_warm_exact.cache_stats["margin_misses"] == 0
        assert_identical(
            signature(detached, cold_exact),
            signature(detached, still_warm_exact),
        )


# ----------------------------------------------------------------------
# CLI-level differential: the flags wire through end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cli_workdir(fitted, small_benchmark, tmp_path_factory):
    path = tmp_path_factory.mktemp("diff-cli")
    save_detector(fitted, path / "model.npz", name="diff")
    save_layout_gds(small_benchmark.testing.layout, path / "layout.gds")
    return path


def _run_cli(arguments, cwd):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _core_lines(stdout: str) -> list[str]:
    return sorted(line for line in stdout.splitlines() if line.startswith("  core"))


class TestCliDifferential:
    def test_incremental_flag_end_to_end(self, cli_workdir):
        base = [
            "scan",
            "--model", "model.npz",
            "--layout", "layout.gds",
            "--no-manifest",
        ]
        incremental_args = [
            *base,
            "--workers", "2",
            "--journal-dir", "journal",
            "--cache-dir", "cache",
            "--incremental",
        ]
        reference = _run_cli([*base, "--no-cache"], cli_workdir)
        assert reference.returncode == 0, reference.stderr

        cold = _run_cli(incremental_args, cli_workdir)
        assert cold.returncode == 0, cold.stderr
        rescan = _run_cli(incremental_args, cli_workdir)
        assert rescan.returncode == 0, rescan.stderr

        assert _core_lines(reference.stdout) == _core_lines(cold.stdout)
        assert _core_lines(reference.stdout) == _core_lines(rescan.stdout)
        assert _core_lines(reference.stdout)  # found actual hotspots
        assert "reused" in rescan.stderr
        # Incremental keeps the journal for the next diff.
        assert (cli_workdir / "journal" / "journal.jsonl").exists()

    def test_compute_flag_end_to_end(self, cli_workdir):
        base = [
            "scan",
            "--model", "model.npz",
            "--layout", "layout.gds",
            "--no-manifest",
            "--no-cache",
        ]
        exact = _run_cli(base, cli_workdir)
        assert exact.returncode == 0, exact.stderr
        fast = _run_cli([*base, "--compute", "fast"], cli_workdir)
        assert fast.returncode == 0, fast.stderr
        assert _core_lines(exact.stdout) == _core_lines(fast.stdout)
        assert _core_lines(exact.stdout)  # found actual hotspots

    def test_incremental_without_journal_is_an_error(self, cli_workdir):
        result = _run_cli(
            [
                "scan",
                "--model", "model.npz",
                "--layout", "layout.gds",
                "--no-manifest",
                "--no-journal",
                "--incremental",
            ],
            cli_workdir,
        )
        assert result.returncode == 2


# ----------------------------------------------------------------------
# regression: repeated evaluation must not re-extract known geometry
# ----------------------------------------------------------------------
class TestExtractOncePerUniqueClip:
    """``margins``/``predict_clips`` used to re-run the MTCG sweep on
    every call; with a cache attached each unique geometry is extracted
    exactly once per process, counted via the ``mtcg.features`` tally."""

    def _sweeps(self, tracer):
        return tracer.stage_totals().get("mtcg.features", {}).get("count", 0)

    def _ungated_clips(self, detector, layout, limit):
        # Topology-gated clips never reach extraction; pick clips the
        # kernels actually evaluate so the sweep counter is exercised.
        clips = detector.detect(layout).extraction.clips
        margins = detector.margins(clips)
        return [c for c, m in zip(clips, margins) if m > -1e8][:limit]

    def test_repeated_margins_sweep_once(self, detached, small_benchmark):
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 40)
        detached.attach_cache(HotspotCache())
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            first = detached.margins(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            second = detached.margins(clips)
            assert self._sweeps(tracer) == cold  # zero new sweeps
            assert np.array_equal(first, second)
        finally:
            obs.set_tracer(None)

    def test_repeated_predict_clips_sweep_once(self, detached, small_benchmark):
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 40)
        detached.attach_cache(HotspotCache())
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            flags_first = detached.predict_clips(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            flags_second = detached.predict_clips(clips)
            assert self._sweeps(tracer) == cold
            assert np.array_equal(flags_first, flags_second)
        finally:
            obs.set_tracer(None)

    def test_uncached_detector_re_extracts(self, detached, small_benchmark):
        # The contrast case documenting what the cache saves: without
        # one, every margins call repeats the full sweep.
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 20)
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            detached.margins(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            detached.margins(clips)
            assert self._sweeps(tracer) == 2 * cold
        finally:
            obs.set_tracer(None)
