"""Differential harness: caching must never change a single bit.

Every test here runs the same detection twice-or-more under different
cache states (off / cold / warm / incremental, thread / process
backends) and asserts the *complete* observable output is identical:
the hotspot report set, the per-clip margins, and the extraction
funnel counts.  A cache that changes any of these is a correctness
bug, however fast it is.

One detector is fitted per module and shared; tests attach and detach
caches around it (``attach_cache(None)`` restores the uncached state).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cache import HotspotCache
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import save_detector
from repro.geometry.rect import Rect
from repro.layout.io import save_layout_gds
from repro.layout.layout import Layout
from repro.resilience import faults
from repro.work import ScanOptions


@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture()
def detached(fitted):
    """Hand the shared detector out cache-free; detach again afterwards."""
    fitted.attach_cache(None)
    yield fitted
    fitted.attach_cache(None)


def signature(detector, report):
    """Everything a scan observably produced, in comparable form."""
    cores = tuple(
        (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
        for clip in report.reports
    )
    extraction = report.extraction
    funnel = (
        extraction.anchor_count,
        extraction.rejected_density,
        extraction.rejected_count,
        extraction.rejected_boundary,
        len(extraction.clips),
    )
    margins = detector.margins(extraction.clips)
    return cores, funnel, margins


def assert_identical(left, right):
    assert left[0] == right[0]  # hotspot report set
    assert left[1] == right[1]  # extraction funnel counts
    assert np.array_equal(left[2], right[2])  # margins, bit-identical


def copy_layout(layout, layer, extra=None):
    out = Layout()
    for rect in layout.layer(layer).rects:
        out.add_rect(layer, rect)
    if extra is not None:
        out.add_rect(layer, extra)
    return out


class TestCacheModesBitIdentical:
    def test_off_cold_warm_thread(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        detached.attach_cache(HotspotCache(directory=tmp_path / "cache"))
        cold_report = detached.detect(layout)
        cold = signature(detached, cold_report)
        warm_report = detached.detect(layout)
        warm = signature(detached, warm_report)

        assert_identical(baseline, cold)
        assert_identical(baseline, warm)

        assert cold_report.cache_stats is not None
        assert cold_report.cache_stats["margin_misses"] > 0
        assert warm_report.cache_stats["margin_misses"] == 0
        assert warm_report.cache_stats["margin_hits"] > 0

    def test_off_cold_warm_process(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        options = ScanOptions(workers=2, cache_dir=tmp_path / "cache")
        baseline = signature(detached, detached.detect(layout, work=ScanOptions(workers=2)))

        detached.attach_cache(HotspotCache(directory=tmp_path / "cache"))
        cold = signature(detached, detached.detect(layout, work=options))
        warm = signature(detached, detached.detect(layout, work=options))

        assert_identical(baseline, cold)
        assert_identical(baseline, warm)

    def test_thread_and_process_backends_agree(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        thread = signature(detached, detached.detect(layout))
        process = signature(
            detached, detached.detect(layout, work=ScanOptions(workers=2))
        )
        assert_identical(thread, process)

    def test_memory_only_cache_thread(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))
        detached.attach_cache(HotspotCache())
        assert_identical(baseline, signature(detached, detached.detect(layout)))
        assert_identical(baseline, signature(detached, detached.detect(layout)))


class TestIncrementalBitIdentical:
    def test_noop_edit_reuses_everything(self, detached, small_benchmark, tmp_path):
        layout = small_benchmark.testing.layout
        options = ScanOptions(
            workers=2,
            journal_dir=tmp_path / "journal",
            incremental=True,
            cache_dir=tmp_path / "cache",
        )
        first = detached.detect(layout, work=options)
        assert first.shards_reused == 0
        # Same geometry, rebuilt object: every shard hash matches.
        rebuilt = copy_layout(layout, 1)
        second = detached.detect(rebuilt, work=options)
        assert second.shards_total > 0
        assert second.shards_reused == second.shards_total
        assert_identical(
            signature(detached, first), signature(detached, second)
        )

    def test_real_edit_recomputes_only_touched_shards(
        self, detached, small_benchmark, tmp_path
    ):
        layout = small_benchmark.testing.layout
        options = ScanOptions(
            workers=2,
            journal_dir=tmp_path / "journal",
            incremental=True,
        )
        detached.detect(layout, work=options)

        box = layout.bbox(1)
        edit = Rect(box.x0 + 2000, box.y0 + 2000, box.x0 + 2400, box.y0 + 2600)
        edited = copy_layout(layout, 1, extra=edit)

        incremental = detached.detect(edited, work=options)
        assert 0 < incremental.shards_reused < incremental.shards_total

        fresh = detached.detect(edited)  # thread backend, no journal
        assert_identical(
            signature(detached, fresh), signature(detached, incremental)
        )

    def test_incremental_requires_journal_dir(self, detached, small_benchmark):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            detached.detect(
                small_benchmark.testing.layout,
                work=ScanOptions(workers=2, incremental=True),
            )


# ----------------------------------------------------------------------
# CLI-level differential: the flags wire through end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cli_workdir(fitted, small_benchmark, tmp_path_factory):
    path = tmp_path_factory.mktemp("diff-cli")
    save_detector(fitted, path / "model.npz", name="diff")
    save_layout_gds(small_benchmark.testing.layout, path / "layout.gds")
    return path


def _run_cli(arguments, cwd):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _core_lines(stdout: str) -> list[str]:
    return sorted(line for line in stdout.splitlines() if line.startswith("  core"))


class TestCliDifferential:
    def test_incremental_flag_end_to_end(self, cli_workdir):
        base = [
            "scan",
            "--model", "model.npz",
            "--layout", "layout.gds",
            "--no-manifest",
        ]
        incremental_args = [
            *base,
            "--workers", "2",
            "--journal-dir", "journal",
            "--cache-dir", "cache",
            "--incremental",
        ]
        reference = _run_cli([*base, "--no-cache"], cli_workdir)
        assert reference.returncode == 0, reference.stderr

        cold = _run_cli(incremental_args, cli_workdir)
        assert cold.returncode == 0, cold.stderr
        rescan = _run_cli(incremental_args, cli_workdir)
        assert rescan.returncode == 0, rescan.stderr

        assert _core_lines(reference.stdout) == _core_lines(cold.stdout)
        assert _core_lines(reference.stdout) == _core_lines(rescan.stdout)
        assert _core_lines(reference.stdout)  # found actual hotspots
        assert "reused" in rescan.stderr
        # Incremental keeps the journal for the next diff.
        assert (cli_workdir / "journal" / "journal.jsonl").exists()

    def test_incremental_without_journal_is_an_error(self, cli_workdir):
        result = _run_cli(
            [
                "scan",
                "--model", "model.npz",
                "--layout", "layout.gds",
                "--no-manifest",
                "--no-journal",
                "--incremental",
            ],
            cli_workdir,
        )
        assert result.returncode == 2


# ----------------------------------------------------------------------
# regression: repeated evaluation must not re-extract known geometry
# ----------------------------------------------------------------------
class TestExtractOncePerUniqueClip:
    """``margins``/``predict_clips`` used to re-run the MTCG sweep on
    every call; with a cache attached each unique geometry is extracted
    exactly once per process, counted via the ``mtcg.features`` tally."""

    def _sweeps(self, tracer):
        return tracer.stage_totals().get("mtcg.features", {}).get("count", 0)

    def _ungated_clips(self, detector, layout, limit):
        # Topology-gated clips never reach extraction; pick clips the
        # kernels actually evaluate so the sweep counter is exercised.
        clips = detector.detect(layout).extraction.clips
        margins = detector.margins(clips)
        return [c for c, m in zip(clips, margins) if m > -1e8][:limit]

    def test_repeated_margins_sweep_once(self, detached, small_benchmark):
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 40)
        detached.attach_cache(HotspotCache())
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            first = detached.margins(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            second = detached.margins(clips)
            assert self._sweeps(tracer) == cold  # zero new sweeps
            assert np.array_equal(first, second)
        finally:
            obs.set_tracer(None)

    def test_repeated_predict_clips_sweep_once(self, detached, small_benchmark):
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 40)
        detached.attach_cache(HotspotCache())
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            flags_first = detached.predict_clips(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            flags_second = detached.predict_clips(clips)
            assert self._sweeps(tracer) == cold
            assert np.array_equal(flags_first, flags_second)
        finally:
            obs.set_tracer(None)

    def test_uncached_detector_re_extracts(self, detached, small_benchmark):
        # The contrast case documenting what the cache saves: without
        # one, every margins call repeats the full sweep.
        from repro import obs

        clips = self._ungated_clips(detached, small_benchmark.testing.layout, 20)
        tracer = obs.set_tracer(obs.Tracer(max_spans=100_000))
        try:
            detached.margins(clips)
            cold = self._sweeps(tracer)
            assert cold > 0
            detached.margins(clips)
            assert self._sweeps(tracer) == 2 * cold
        finally:
            obs.set_tracer(None)
