"""Tests for repro.resilience: faults, retries, breakers, checkpoints.

Everything timing-sensitive runs on fake clocks/sleeps, and every chaos
scenario uses the seeded fault-injection framework, so the suite asserts
exact schedules and exact failure points — no real sleeping, no flakes.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import save_detector
from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    ConfigError,
    GdsiiError,
    InputError,
    QueueFullError,
    ReproError,
    ServeError,
    StageTimeout,
    TransientError,
)
from repro.gdsii.library import GdsBoundary, GdsLibrary
from repro.oasis import OasisError
from repro.layout.io import (
    library_to_clipset,
    load_clipset_gds,
    load_layout_gds,
    save_clipset_gds,
    save_layout_auto,
)
from repro.resilience import (
    BreakerConfig,
    CheckpointStore,
    CircuitBreaker,
    Deadline,
    QuarantineReport,
    RetryPolicy,
    call_with_retry,
    faults,
    training_fingerprint,
)
from repro.resilience.faults import FaultPlan

SRC_DIR = Path(repro.__file__).resolve().parents[1]


class FakeClock:
    """Monotonic clock the tests advance by hand."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_input_errors_are_repro_errors(self):
        for exc_type in (GdsiiError, OasisError):
            assert issubclass(exc_type, InputError)
            assert issubclass(exc_type, ReproError)

    def test_load_shedding_errors_are_transient(self):
        assert issubclass(QueueFullError, TransientError)
        assert issubclass(CircuitOpenError, TransientError)

    def test_circuit_open_carries_retry_after(self):
        exc = CircuitOpenError("open", retry_after_s=3.5)
        assert exc.retry_after_s == 3.5

    def test_stage_timeout_and_checkpoint_are_repro_errors(self):
        assert issubclass(StageTimeout, ReproError)
        assert issubclass(CheckpointError, ReproError)
        assert not issubclass(CheckpointError, InputError)


# ----------------------------------------------------------------------
# retry + deadline
# ----------------------------------------------------------------------


class TestRetry:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=10.0)
        assert policy.delay(2, "label") == policy.delay(2, "label")
        assert policy.delay(2, "label") != policy.delay(2, "other")

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=8, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        delays = [policy.delay(attempt) for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("not yet")
            return "ok"

        result = call_with_retry(
            flaky, RetryPolicy(attempts=3), label="x", sleep=slept.append
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2
        policy = RetryPolicy(attempts=3)
        assert slept == [policy.delay(0, "x"), policy.delay(1, "x")]

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ConfigError("permanent")

        with pytest.raises(ConfigError):
            call_with_retry(broken, RetryPolicy(attempts=5), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_attempts_exhausted_reraises_last(self):
        with pytest.raises(TransientError, match="always"):
            call_with_retry(
                lambda: (_ for _ in ()).throw(TransientError("always")),
                RetryPolicy(attempts=3),
                sleep=lambda s: None,
            )

    def test_expired_deadline_raises_instead_of_sleeping(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(6.0)

        def flaky():
            raise TransientError("again")

        with pytest.raises(StageTimeout, match="stage"):
            call_with_retry(
                flaky,
                RetryPolicy(attempts=3),
                label="stage",
                deadline=deadline,
                sleep=lambda s: pytest.fail("must not sleep past the deadline"),
            )

    def test_deadline_bookkeeping(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired()
        clock.advance(3.0)
        assert deadline.expired()
        with pytest.raises(StageTimeout):
            deadline.check("kernels")
        assert Deadline.after(None) is None
        assert Deadline.after(1.0, clock=clock) is not None

    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ConfigError):
            Deadline(0.0)


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------


class TestFaults:
    def test_spec_parsing(self):
        plan = FaultPlan.from_spec("seed=9;io.read=error:0.5@2!3;train.*=timeout")
        assert plan.seed == 9
        assert plan.rules[0].point == "io.read"
        assert plan.rules[0].probability == 0.5
        assert plan.rules[0].after == 2
        assert plan.rules[0].limit == 3
        assert plan.rules[1].kind == "timeout"
        assert plan.rules[1].probability == 1.0

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("io.read=explode")
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("io.read=error:2.0")
        with pytest.raises(ConfigError):
            FaultPlan.from_spec("just-a-word")

    def test_no_plan_is_a_noop(self):
        assert faults.get() is None
        faults.inject("anything.at.all")  # must not raise

    def test_kinds_map_to_exception_types(self):
        with faults.active("p=error"):
            with pytest.raises(TransientError):
                faults.inject("p")
        with faults.active("p=timeout"):
            with pytest.raises(StageTimeout):
                faults.inject("p")
        with faults.active("p=corrupt"):
            with pytest.raises(InputError):
                faults.inject("p")

    def test_after_and_limit_windows(self):
        with faults.active("p=error@2!2") as injector:
            outcomes = []
            for _ in range(6):
                try:
                    faults.inject("p")
                    outcomes.append("ok")
                except TransientError:
                    outcomes.append("boom")
            assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]
            assert injector.fire_count == 2

    def test_probabilistic_fires_are_reproducible(self):
        def run() -> list:
            with faults.active("seed=42;p=error:0.3") as injector:
                fired = []
                for index in range(200):
                    try:
                        faults.inject("p", index=index)
                    except TransientError:
                        fired.append(index)
                assert injector.fire_count == len(fired)
                return fired

        first, second = run(), run()
        assert first == second
        assert 20 < len(first) < 120  # ~30% of 200

    def test_active_restores_previous_plan(self):
        assert faults.get() is None
        with faults.active("p=error"):
            with faults.active("q=error") as inner:
                assert faults.get() is inner
                faults.inject("p")  # inner plan has no rule for p
            with pytest.raises(TransientError):
                faults.inject("p")
        assert faults.get() is None

    def test_summary_counts_by_point(self):
        with faults.active("a.*=error!1;b=error!2") as injector:
            for point in ("a.x", "b", "b"):
                with pytest.raises(TransientError):
                    faults.inject(point)
            assert injector.summary() == {
                "fired": 3,
                "by_point": {"a.x": 1, "b": 2},
            }


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker(
            "model",
            BreakerConfig(failure_threshold=threshold, reset_timeout_s=reset),
            clock=clock,
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(3):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.before_call()
        assert 0 < excinfo.value.retry_after_s <= 10.0
        assert breaker.rejected_total == 1

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        breaker.before_call()  # admitted probe
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.before_call()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened_total == 2
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_context_manager_records_outcomes(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        with pytest.raises(ValueError):
            with breaker:
                raise ValueError("boom")
        assert breaker.state == "open"


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------


class TestQuarantine:
    def test_counts_and_bounded_items(self):
        report = QuarantineReport(max_items=3)
        for index in range(5):
            report.add("GdsiiError", f"bad {index}", source="io.clip", index=index)
        report.add("LayoutError", "no window")
        assert report.total == 6
        assert bool(report)
        assert report.counts_by_kind() == {"GdsiiError": 5, "LayoutError": 1}
        assert len(report.items()) == 3
        document = report.to_dict()
        assert document["truncated"] is True
        assert document["items"][0]["context"] == {"index": "0"}

    def test_merge_and_write(self, tmp_path):
        left, right = QuarantineReport(), QuarantineReport()
        left.add("A", "x")
        right.add("A", "y")
        right.add("B", "z")
        left.merge(right)
        assert left.total == 3
        assert left.counts_by_kind() == {"A": 2, "B": 1}
        path = left.write(tmp_path / "q.json")
        assert json.loads(path.read_text())["total"] == 3

    def test_empty_report_is_falsy(self):
        assert not QuarantineReport()


# ----------------------------------------------------------------------
# corrupt-input corpus
# ----------------------------------------------------------------------


class TestCorruptInputs:
    @pytest.fixture(scope="class")
    def gds_bytes(self, small_benchmark, tmp_path_factory):
        path = tmp_path_factory.mktemp("corpus") / "layout.gds"
        save_layout_auto(small_benchmark.testing.layout, path)
        return path.read_bytes()

    @pytest.fixture(scope="class")
    def oasis_bytes(self, small_benchmark, tmp_path_factory):
        path = tmp_path_factory.mktemp("corpus") / "layout.oas"
        save_layout_auto(small_benchmark.testing.layout, path)
        return path.read_bytes()

    @pytest.mark.parametrize("cut", [0.3, 0.6, 0.95])
    def test_truncated_gds_reports_offset(self, gds_bytes, cut):
        from repro.gdsii.reader import read_library

        with pytest.raises(GdsiiError, match="offset") as excinfo:
            read_library(gds_bytes[: int(len(gds_bytes) * cut)])
        assert isinstance(excinfo.value, InputError)

    @pytest.mark.parametrize("cut", [0.5, 0.9])
    def test_truncated_oasis_reports_offset(self, oasis_bytes, cut):
        from repro.oasis.reader import read_oasis

        with pytest.raises(OasisError, match="offset"):
            read_oasis(oasis_bytes[: int(len(oasis_bytes) * cut)])

    def test_load_layout_names_the_file(self, gds_bytes, tmp_path):
        path = tmp_path / "torn.gds"
        path.write_bytes(gds_bytes[: len(gds_bytes) // 2])
        with pytest.raises(GdsiiError, match="torn.gds"):
            load_layout_gds(path)

    def test_clipset_quarantine_skips_bad_structures(self, small_benchmark):
        from repro.layout.io import clipset_to_library

        library = clipset_to_library(small_benchmark.training)
        total = len(library.structures)
        # A clip structure with no window marker and one with no label.
        bad = library.new_structure("HS_999999")
        bad.add(GdsBoundary(1, 0, [(0, 0), (4, 0), (4, 4), (0, 4)]))
        library.new_structure("WEIRD_000001")
        spec = small_benchmark.training.spec
        with pytest.raises(ReproError):
            library_to_clipset(library, spec)
        quarantine = QuarantineReport()
        clip_set = library_to_clipset(library, spec, quarantine=quarantine)
        assert len(clip_set) == total
        assert quarantine.total == 2
        assert quarantine.counts_by_kind() == {"LayoutError": 2}

    def test_clipset_load_with_injected_faults(self, small_benchmark, tmp_path):
        path = tmp_path / "clips.gds"
        save_clipset_gds(small_benchmark.training, path)
        spec = small_benchmark.training.spec
        with faults.active("seed=3;io.clip=corrupt:0.25"):
            quarantine = QuarantineReport()
            clip_set = load_clipset_gds(path, spec, quarantine=quarantine)
        assert quarantine.total > 0
        assert len(clip_set) + quarantine.total == len(small_benchmark.training)


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_fingerprint_ignores_parallelism(self, small_benchmark):
        from dataclasses import replace

        base = DetectorConfig.ours()
        fp1 = training_fingerprint(small_benchmark.training, base)
        fp2 = training_fingerprint(
            small_benchmark.training, replace(base, parallel=True)
        )
        assert fp1 == fp2
        other = training_fingerprint(
            small_benchmark.training, DetectorConfig.basic()
        )
        assert fp1 != other

    def test_begin_clears_on_fingerprint_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin("aaaa", kernels=4)
        (tmp_path / "ckpt" / "kernel_0001.npz").write_bytes(b"junk")
        assert store.completed_indices() == [1]
        loaded = store.begin("bbbb", kernels=4)
        assert loaded == {}
        assert store.completed_indices() == []

    def test_corrupt_checkpoint_file_costs_one_kernel(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.begin("aaaa", kernels=4)
        (tmp_path / "ckpt" / "kernel_0002.npz").write_bytes(b"not an npz")
        loaded = store.begin("aaaa", kernels=4, resume=True)
        assert loaded == {}  # unreadable file skipped, not fatal

    def test_interrupted_fit_resumes_identically(self, small_benchmark, tmp_path):
        config = DetectorConfig.ours()
        store = CheckpointStore(tmp_path / "ckpt")
        with faults.active("train.kernel=error@2!1"):
            with pytest.raises(TransientError):
                HotspotDetector(config).fit(
                    small_benchmark.training, checkpoint=store
                )
        completed = store.completed_indices()
        assert len(completed) >= 1

        calls = {"n": 0}
        original = CheckpointStore.save_kernel

        def counting(self, index, kernel):
            calls["n"] += 1
            return original(self, index, kernel)

        resumed = HotspotDetector(config)
        try:
            CheckpointStore.save_kernel = counting
            resumed.fit(small_benchmark.training, checkpoint=store, resume=True)
        finally:
            CheckpointStore.save_kernel = original
        fresh = HotspotDetector(config)
        fresh.fit(small_benchmark.training)
        kernels = len(fresh.model_.kernels)
        # Completed kernels were reused, and the resumed model is
        # indistinguishable from one trained in a single pass.
        assert calls["n"] == kernels - len(completed)
        probe = list(small_benchmark.training)[:8]
        assert np.allclose(resumed.margins(probe), fresh.margins(probe))

    def test_resume_false_retrains_everything(self, small_benchmark, tmp_path):
        config = DetectorConfig.ours()
        store = CheckpointStore(tmp_path / "ckpt")
        detector = HotspotDetector(config)
        detector.fit(small_benchmark.training, checkpoint=store)
        kernels = len(detector.model_.kernels)
        assert len(store.completed_indices()) == kernels
        loaded = store.begin(
            training_fingerprint(small_benchmark.training, config),
            kernels,
            resume=False,
        )
        assert loaded == {}
        assert store.completed_indices() == []

    def test_deadline_interrupts_training(self, small_benchmark, tmp_path):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(6.0)
        store = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(StageTimeout):
            HotspotDetector(DetectorConfig.ours()).fit(
                small_benchmark.training, checkpoint=store, deadline=deadline
            )


# ----------------------------------------------------------------------
# serving-path resilience
# ----------------------------------------------------------------------


class TestServeResilience:
    def test_load_signals_do_not_trip_the_circuit(self):
        from repro.errors import RequestTimeoutError, ServerClosedError
        from repro.serve.service import ServeService

        service = ServeService()
        breaker = service.breaker_for("m")
        for exc in (
            QueueFullError("full"),
            RequestTimeoutError("slow"),
            ServerClosedError("bye"),
        ):
            for _ in range(10):
                service._record_outcome(breaker, exc)
        assert breaker.state == "closed"
        for _ in range(breaker.config.failure_threshold):
            service._record_outcome(breaker, ServeError("boom"))
        assert breaker.state == "open"
        service._record_outcome(breaker, None)
        assert breaker.state == "closed"

    def test_evaluate_faults_trip_breaker_end_to_end(
        self, small_benchmark, tmp_path
    ):
        from repro.serve.service import ServeService

        detector = HotspotDetector(DetectorConfig.basic())
        detector.fit(small_benchmark.training)
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        service = ServeService(
            breaker=BreakerConfig(failure_threshold=2, reset_timeout_s=60.0)
        )
        service.load_model(path)
        service.start()
        try:
            clips = small_benchmark.training.hotspots()[:2]
            with faults.active("serve.evaluate=error"):
                for _ in range(2):
                    with pytest.raises(TransientError):
                        service.predict_clips(clips)
            breaker = service.breaker_for("default")
            assert breaker.state == "open"
            with pytest.raises(CircuitOpenError) as excinfo:
                service.predict_clips(clips)
            assert excinfo.value.retry_after_s > 0
            # Cooling down + a healthy probe closes the circuit again.
            breaker._opened_at -= 61.0
            flags, margins, _ = service.predict_clips(clips)
            assert len(flags) == len(clips)
            assert breaker.state == "closed"
        finally:
            service.close()

    def test_client_retries_honour_retry_after(self):
        from repro.serve.client import ServeClient, ServeClientError

        slept = []
        responses = [
            (429, {"error": {"code": "queue_full", "message": "full"}},
             "application/json", {"Retry-After": "2"}),
            (503, {"error": {"code": "circuit_open", "message": "open"}},
             "application/json", {}),
            (200, {"ok": True}, "application/json", {}),
        ]
        client = ServeClient(
            "http://127.0.0.1:1", retries=2, sleep=slept.append
        )
        client._request = lambda *args, **kwargs: responses.pop(0)
        body, attempts = client._request_ok("POST", "/v1/predict", {})
        assert body == {"ok": True}
        assert attempts == 3
        # First sleep follows the server's Retry-After header; the second
        # falls back to the local deterministic backoff schedule.
        assert slept[0] == 2.0
        assert slept[1] == client.backoff.delay(1, label="/v1/predict")

        responses = [
            (429, {"error": {"code": "queue_full", "message": "full"}},
             "application/json", {})
        ] * 3
        client._request = lambda *args, **kwargs: responses.pop(0)
        with pytest.raises(ServeClientError) as excinfo:
            client._request_ok("POST", "/v1/predict", {})
        assert excinfo.value.status == 429

    def test_client_does_not_retry_non_idempotent(self):
        from repro.serve.client import ServeClient, ServeClientError

        calls = {"n": 0}

        def request(*args, **kwargs):
            calls["n"] += 1
            return 503, {"error": {"code": "x", "message": "y"}}, "application/json", {}

        client = ServeClient("http://127.0.0.1:1", retries=5, sleep=lambda s: None)
        client._request = request
        with pytest.raises(ServeClientError):
            client._request_ok("POST", "/v1/predict", {}, idempotent=False)
        assert calls["n"] == 1

    def test_registry_load_retries_torn_reads(self, small_benchmark, tmp_path):
        from repro.serve.registry import ModelRegistry

        detector = HotspotDetector(DetectorConfig.basic())
        detector.fit(small_benchmark.training)
        path = tmp_path / "model.npz"
        save_detector(detector, path)
        registry = ModelRegistry()
        with faults.active("registry.load=error!2") as injector:
            entry = registry.load(path)
        assert injector.fire_count == 2
        assert entry.detector.model_ is not None

    def test_error_status_mapping(self):
        from repro.serve.httpd import _error_status

        status, code, retry_after = _error_status(QueueFullError("full"))
        assert (status, code) == (429, "queue_full")
        assert retry_after is not None
        status, _, retry_after = _error_status(
            CircuitOpenError("open", retry_after_s=7.0)
        )
        assert (status, retry_after) == (503, 7.0)
        assert _error_status(InputError("bad"))[:2] == (400, "bad_geometry")


# ----------------------------------------------------------------------
# CLI end-to-end (chaos + resume)
# ----------------------------------------------------------------------


class TestCliResilience:
    @pytest.fixture(scope="class")
    def workdir(self, small_benchmark, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli")
        save_clipset_gds(small_benchmark.training, path / "clips.gds")
        save_layout_auto(small_benchmark.testing.layout, path / "layout.gds")
        return path

    def test_chaos_scan_reports_quarantine(self, workdir, monkeypatch, capsys):
        model = workdir / "model.npz"
        assert (
            cli_main(
                [
                    "train",
                    "--clips", str(workdir / "clips.gds"),
                    "--model", str(model),
                    "--variant", "basic",
                ]
            )
            == 0
        )
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;extract.clip=corrupt:0.3")
        assert (
            cli_main(
                [
                    "scan",
                    "--model", str(model),
                    "--layout", str(workdir / "layout.gds"),
                    "--quarantine", str(workdir / "quarantine.json"),
                    "--manifest", str(workdir / "scan.manifest.json"),
                ]
            )
            == 0
        )
        assert faults.get() is None  # main() uninstalls the env plan
        manifest = json.loads((workdir / "scan.manifest.json").read_text())
        quarantine = json.loads((workdir / "quarantine.json").read_text())
        assert manifest["metrics"]["quarantined"] > 0
        assert quarantine["total"] == manifest["metrics"]["quarantined"]
        assert "quarantined" in capsys.readouterr().out

    def test_sigterm_mid_train_resumes(self, workdir):
        """A train killed by SIGTERM mid-run resumes via --resume."""
        model = workdir / "resumable.npz"
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            sys.path.insert(0, {str(SRC_DIR)!r})
            from repro.cli import main
            from repro.resilience.checkpoint import CheckpointStore

            original = CheckpointStore.save_kernel

            def killing_save(self, index, kernel):
                original(self, index, kernel)
                os.kill(os.getpid(), signal.SIGTERM)

            CheckpointStore.save_kernel = killing_save
            sys.exit(main([
                "train",
                "--clips", {str(workdir / "clips.gds")!r},
                "--model", {str(model)!r},
                "--variant", "ours",
                "--no-manifest",
            ]))
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == -signal.SIGTERM, result.stderr
        checkpoint_dir = model.with_suffix(".ckpt")
        assert CheckpointStore(checkpoint_dir).completed_indices() == [0]

        assert (
            cli_main(
                [
                    "train",
                    "--clips", str(workdir / "clips.gds"),
                    "--model", str(model),
                    "--variant", "ours",
                    "--resume",
                    "--manifest", str(workdir / "train.manifest.json"),
                ]
            )
            == 0
        )
        manifest = json.loads((workdir / "train.manifest.json").read_text())
        assert manifest["metrics"]["resumed_kernels"] == 1
        assert model.exists()
        assert not checkpoint_dir.exists()  # cleared after success

    def test_no_checkpoint_flag_leaves_no_directory(self, workdir):
        model = workdir / "plain.npz"
        assert (
            cli_main(
                [
                    "train",
                    "--clips", str(workdir / "clips.gds"),
                    "--model", str(model),
                    "--variant", "basic",
                    "--no-checkpoint",
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert not model.with_suffix(".ckpt").exists()
