"""Tests for hit/extra scoring (Section II definitions)."""

import pytest

from repro.core.metrics import DetectionScore, is_hit, score_reports
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipSpec

SPEC = ClipSpec(core_side=4, clip_side=12)


def report_at(x, y):
    """A report whose core's lower-left corner is (x, y)."""
    core = Rect(x, y, x + 4, y + 4)
    return Clip.build(SPEC.clip_for_core(core), SPEC, [])


class TestIsHit:
    def test_exact_overlap(self):
        actual = Rect(10, 10, 14, 14)
        assert is_hit(report_at(10, 10), actual)

    def test_partial_core_overlap(self):
        actual = Rect(10, 10, 14, 14)
        assert is_hit(report_at(12, 12), actual)

    def test_touching_cores_not_a_hit(self):
        actual = Rect(10, 10, 14, 14)
        assert not is_hit(report_at(14, 10), actual)

    def test_core_overlap_but_clip_not_covering(self):
        # A spec with tiny ambit: the clip barely exceeds the core, so a
        # diagonal offset report's clip cannot cover the actual core.
        tight = ClipSpec(core_side=4, clip_side=6)
        core = Rect(3, 3, 7, 7)
        report = Clip.build(tight.clip_for_core(core), tight, [])
        actual = Rect(0, 0, 4, 4)  # overlaps core at (3,3)-(4,4)
        assert report.core.overlaps(actual)
        assert not report.window.contains_rect(actual)
        assert not is_hit(report, actual)


class TestScoreReports:
    def test_each_actual_counted_once(self):
        actual = [Rect(10, 10, 14, 14)]
        reports = [report_at(10, 10), report_at(11, 11), report_at(9, 9)]
        score = score_reports(reports, actual, layout_area_um2=100.0)
        assert score.hits == 1
        assert score.extras == 0

    def test_one_report_hits_two_actuals(self):
        actual = [Rect(10, 10, 14, 14), Rect(12, 12, 16, 16)]
        score = score_reports([report_at(11, 11)], actual, 100.0)
        assert score.hits == 2
        assert score.extras == 0

    def test_extras_counted(self):
        actual = [Rect(10, 10, 14, 14)]
        reports = [report_at(10, 10), report_at(100, 100)]
        score = score_reports(reports, actual, 100.0)
        assert score.hits == 1
        assert score.extras == 1

    def test_accuracy_and_ratio(self):
        actual = [Rect(0, 0, 4, 4), Rect(100, 100, 104, 104)]
        reports = [report_at(0, 0), report_at(50, 50)]
        score = score_reports(reports, actual, 200.0)
        assert score.accuracy == pytest.approx(0.5)
        assert score.hit_extra_ratio == pytest.approx(1.0)
        assert score.false_alarm_per_um2 == pytest.approx(1 / 200.0)

    def test_no_actuals_perfect_accuracy(self):
        score = score_reports([], [], 10.0)
        assert score.accuracy == 1.0
        assert score.hit_extra_ratio == 0.0

    def test_zero_extras_infinite_ratio(self):
        actual = [Rect(0, 0, 4, 4)]
        score = score_reports([report_at(0, 0)], actual, 10.0)
        assert score.hit_extra_ratio == float("inf")

    def test_as_row_keys(self):
        score = DetectionScore(hits=3, extras=2, actual_hotspots=4, layout_area_um2=10)
        row = score.as_row()
        assert row["hit"] == 3 and row["extra"] == 2
        assert row["accuracy"] == pytest.approx(0.75)
