"""Shared fixtures: small cached benchmarks for the heavier pipeline tests."""

import pytest

from repro.data.benchmarks import generate_benchmark


@pytest.fixture(scope="session")
def small_benchmark():
    """benchmark1 at a small scale — enough structure, fast to sweep."""
    return generate_benchmark("benchmark1", scale=0.4)


@pytest.fixture(scope="session")
def ambit_benchmark():
    """benchmark4 carries the ambit-sensitive motif (Fig. 10 cases)."""
    return generate_benchmark("benchmark4", scale=0.8)
