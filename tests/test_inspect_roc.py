"""Tests for model introspection and operating-curve utilities."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.inspect import explain_clip
from repro.core.roc import CurvePoint, area_under_curve, knee_point, sweep_thresholds
from repro.core.metrics import DetectionScore
from repro.errors import NotFittedError


@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


class TestExplain:
    def test_unfitted_raises(self, small_benchmark):
        with pytest.raises(NotFittedError):
            explain_clip(HotspotDetector(), small_benchmark.training.hotspots()[0])

    def test_training_hotspot_explained(self, fitted, small_benchmark):
        clip = small_benchmark.training.hotspots()[0]
        explanation = explain_clip(fitted, clip)
        assert explanation.admitted_anywhere
        assert explanation.flagged
        assert "hotspot" in explanation.verdict
        assert explanation.best_margin >= 0

    def test_alien_clip_gated_out(self, fitted, small_benchmark):
        from repro.geometry.rect import Rect
        from repro.layout.clip import Clip

        spec = fitted.config.spec
        window = spec.clip_at(0, 0)
        core = spec.core_of(window)
        weird = [
            Rect(core.x0 + 50, core.y0 + 50, core.x0 + 250, core.y1 - 50),
            Rect(core.x0 + 400, core.y0 + 50, core.x1 - 50, core.y0 + 250),
            Rect(core.x0 + 600, core.y0 + 500, core.x0 + 800, core.y0 + 900),
        ]
        explanation = explain_clip(fitted, Clip.build(window, spec, weird))
        assert not explanation.admitted_anywhere
        assert "gated out" in explanation.verdict
        assert not explanation.flagged

    def test_summary_lines_nonempty(self, fitted, small_benchmark):
        clip = small_benchmark.training.non_hotspots()[0]
        lines = explain_clip(fitted, clip).summary_lines()
        assert lines and lines[0].startswith("verdict")

    def test_margins_agree_with_detector(self, fitted, small_benchmark):
        clips = small_benchmark.training.hotspots()[:5]
        margins = fitted.margins(clips)
        for clip, margin in zip(clips, margins):
            explanation = explain_clip(fitted, clip)
            assert explanation.best_margin == pytest.approx(margin)


class TestSweep:
    def test_monotone_in_threshold(self, fitted, small_benchmark):
        points = sweep_thresholds(
            fitted, small_benchmark.testing, thresholds=(-0.5, 0.0, 0.5, 1.0)
        )
        hits = [p.score.hits for p in points]
        assert hits == sorted(hits, reverse=True)

    def test_unfitted_raises(self, small_benchmark):
        with pytest.raises(NotFittedError):
            sweep_thresholds(HotspotDetector(), small_benchmark.testing)

    def test_knee_point_selection(self):
        def pt(threshold, hits, extras, actual=10):
            return CurvePoint(
                threshold, DetectionScore(hits, extras, actual, 100.0)
            )

        points = [pt(-0.5, 10, 20), pt(0.0, 9, 5), pt(0.5, 7, 1)]
        knee = knee_point(points, min_hit_rate=0.8)
        assert knee is not None and knee.threshold == 0.0
        assert knee_point(points, min_hit_rate=0.99).score.extras == 20
        assert knee_point([pt(0.0, 1, 0)], min_hit_rate=0.9) is None

    def test_auc_bounds(self):
        def pt(threshold, hits, extras):
            return CurvePoint(threshold, DetectionScore(hits, extras, 10, 100.0))

        perfect = [pt(0.0, 10, 0)]
        assert area_under_curve(perfect) == pytest.approx(1.0)
        assert area_under_curve([]) == 0.0
        mixed = [pt(-0.5, 10, 10), pt(0.0, 8, 5), pt(0.5, 4, 0)]
        value = area_under_curve(mixed)
        assert 0.0 <= value <= 1.0
