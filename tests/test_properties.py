"""Cross-module property-based tests (hypothesis).

These pin the invariants that hold *between* subsystems — the contracts
the pipeline's correctness rests on — rather than within one module.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.dissect import disjoint_cover, dissect_polygon
from repro.geometry.grid import density_grid
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect, union_area
from repro.geometry.transform import Orientation, transform_rects_in_window
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.mtcg.tiles import horizontal_tiling, vertical_tiling
from repro.svm.kernel import squared_distances
from repro.svm.smo import solve_smo
from repro.topology.density import density_distance
from repro.topology.strings import canonical_string_key, downward_string

WINDOW = Rect(0, 0, 24, 24)


def rect_sets(max_rects=6, bound=24, max_side=8):
    def build(raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(bound, x0 + w), min(bound, y0 + h))
            if r and not any(r.overlaps(o) for o in rects):
                rects.append(r)
        return rects

    return st.lists(
        st.tuples(
            st.integers(0, bound - 2),
            st.integers(0, bound - 2),
            st.integers(1, max_side),
            st.integers(1, max_side),
        ),
        max_size=max_rects,
    ).map(build)


class TestGeometryContracts:
    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_tiling_area_conservation(self, rects):
        """Block area in both tilings equals the input union area."""
        expected = union_area(rects)
        for tiling in (horizontal_tiling(rects, WINDOW), vertical_tiling(rects, WINDOW)):
            block_area = sum(t.rect.area for t in tiling.blocks())
            assert block_area == expected

    @given(rect_sets())
    @settings(max_examples=40, deadline=None)
    def test_density_grid_mass_conservation(self, rects):
        """Total grid mass equals covered area (after overlap resolution)."""
        cover = disjoint_cover(rects)
        grid = density_grid(cover, WINDOW, 8)
        cell_area = (24 // 8) ** 2
        assert grid.sum() * cell_area == pytest.approx(union_area(rects))

    @given(rect_sets())
    @settings(max_examples=30, deadline=None)
    def test_string_key_blind_to_orientation_and_density_zero(self, rects):
        """Canonical keys and Eq. 1 agree that D8 copies are identical."""
        if not rects:
            return
        key = canonical_string_key(rects, WINDOW)
        grid = density_grid(rects, WINDOW, 8)
        for orientation in (Orientation.R90, Orientation.MX, Orientation.MXR90):
            moved = transform_rects_in_window(rects, WINDOW, orientation)
            assert canonical_string_key(moved, WINDOW) == key
            moved_grid = density_grid(moved, WINDOW, 8)
            assert density_distance(grid, moved_grid) == pytest.approx(0.0)

    @given(rect_sets(), st.integers(-4, 4), st.integers(-4, 4))
    @settings(max_examples=30, deadline=None)
    def test_string_topology_stable_under_interior_shift(self, rects, dx, dy):
        """Shifting a pattern strictly inside the window keeps its string.

        Directional strings encode topology, not position — provided no
        geometry crosses the window boundary.
        """
        inner = Rect(6, 6, 18, 18)
        kept = [r for r in rects if inner.contains_rect(r)]
        if not kept:
            return
        moved = [r.translated(dx, dy) for r in kept]
        if not all(WINDOW.contains_rect(r) and not (
            r.x0 < 1 or r.y0 < 1 or r.x1 > 23 or r.y1 > 23
        ) for r in moved):
            return
        assert downward_string(kept, WINDOW) == downward_string(moved, WINDOW)


class TestClipContracts:
    SPEC = ClipSpec(core_side=8, clip_side=24)

    @given(rect_sets())
    @settings(max_examples=30, deadline=None)
    def test_core_plus_ambit_is_clip(self, rects):
        clip = Clip.build(self.SPEC.clip_at(0, 0), self.SPEC, rects, ClipLabel.UNKNOWN)
        core_area = sum(r.area for r in clip.core_rects())
        ambit_area = sum(r.area for r in clip.ambit_rects())
        total = sum(r.area for r in clip.rects)
        assert core_area + ambit_area == total

    @given(rect_sets(), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_shift_roundtrip_in_interior(self, rects, amount):
        """Shifting there and back returns interior geometry unchanged."""
        clip = Clip.build(self.SPEC.clip_at(0, 0), self.SPEC, rects)
        round_trip = clip.shifted(amount, 0).shifted(-amount, 0)
        # geometry within `amount` of the boundary may be clipped away;
        # interior geometry must survive exactly.
        interior = Rect(amount, 0, 24 - amount, 24)
        survivors = {r for r in clip.rects if interior.contains_rect(r)}
        assert survivors <= set(round_trip.rects)


class TestSmoAgainstBruteForce:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_tiny_qp_matches_grid_search(self, seed):
        """On 3-sample problems SMO matches a dense grid search of the dual."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, 2))
        y = np.array([1, -1, 1])
        c_bound = 2.0
        gram = np.exp(-0.5 * squared_distances(x, x))
        result = solve_smo(gram, y, np.full(3, c_bound), tolerance=1e-6)

        q = gram * np.outer(y, y)

        def dual(alpha):
            return 0.5 * alpha @ q @ alpha - alpha.sum()

        # Grid-search alpha_0, alpha_2 (alpha_1 fixed by the equality
        # constraint y.alpha = 0 -> alpha_1 = alpha_0 + alpha_2).
        best = np.inf
        grid = np.linspace(0, c_bound, 41)
        for a0 in grid:
            for a2 in grid:
                a1 = a0 + a2
                if a1 > c_bound:
                    continue
                best = min(best, dual(np.array([a0, a1, a2])))
        assert result.objective <= best + 1e-3
