"""Tests for the baselines: pattern matcher, window scan, single SVM."""

import pytest

from repro.baselines.pattern_match import PatternMatchConfig, PatternMatcher
from repro.baselines.single_svm import SingleSvmBaseline
from repro.baselines.window_scan import (
    WindowScanConfig,
    count_window_clips,
    scan_clips,
    window_positions,
)
from repro.errors import LayoutError, NotFittedError
from repro.geometry.rect import Rect
from repro.layout.clip import ClipSpec
from repro.layout.layout import Layout


class TestWindowScan:
    def test_overlap_validation(self):
        with pytest.raises(LayoutError):
            WindowScanConfig(overlap=1.0)

    def test_stride_half_overlap(self):
        assert WindowScanConfig(overlap=0.5).stride(1200) == 600

    def test_positions_cover_region(self):
        region = Rect(0, 0, 5000, 3000)
        positions = list(window_positions(region, 1200))
        assert (0, 0) in positions
        # the window anchored at each position stays inside the region
        for x, y in positions:
            assert region.contains_rect(Rect(x, y, x + 1200, y + 1200))
        # last column/row clamped to the region edge
        assert any(x == 5000 - 1200 for x, _ in positions)
        assert any(y == 3000 - 1200 for _, y in positions)

    def test_count_matches_positions(self):
        region = Rect(0, 0, 7300, 4100)
        count = count_window_clips(region, 1200)
        assert count == len(list(window_positions(region, 1200)))

    def test_count_small_region(self):
        assert count_window_clips(Rect(0, 0, 1000, 1000), 1200) == 1

    def test_table5_scale_relation(self):
        """Window counts scale ~4x when halving the stride (Table V)."""
        region = Rect(0, 0, 110_000, 115_000)
        half = count_window_clips(region, 1200, WindowScanConfig(overlap=0.5))
        none = count_window_clips(region, 1200, WindowScanConfig(overlap=0.0))
        assert 3.2 < half / none < 4.4

    def test_scan_clips_skip_empty(self):
        layout = Layout()
        layout.add_rect(1, Rect(100, 100, 400, 400))
        spec = ClipSpec()
        region = Rect(0, 0, 10_000, 10_000)
        everything = scan_clips(layout, spec, region)
        occupied = scan_clips(layout, spec, region, skip_empty=True)
        assert len(occupied) < len(everything)
        assert all(c.core_rects() for c in occupied)


class TestPatternMatcher:
    def test_unfitted_raises(self, small_benchmark):
        matcher = PatternMatcher()
        with pytest.raises(NotFittedError):
            matcher.detect(small_benchmark.testing.layout)

    def test_fit_builds_library(self, small_benchmark):
        matcher = PatternMatcher()
        entries = matcher.fit(small_benchmark.training)
        # 5 shift derivatives per hotspot
        assert entries == 5 * len(small_benchmark.training.hotspots())

    def test_matches_training_hotspots(self, small_benchmark):
        matcher = PatternMatcher()
        matcher.fit(small_benchmark.training)
        hotspots = small_benchmark.training.hotspots()
        assert all(matcher.matches(clip) for clip in hotspots)

    def test_scores_testing_layout(self, small_benchmark):
        matcher = PatternMatcher()
        matcher.fit(small_benchmark.training)
        report = matcher.score(small_benchmark.testing)
        assert report.score is not None
        assert report.score.accuracy >= 0.6

    def test_pm_produces_more_extras_than_ml(self, small_benchmark):
        """Table II shape: PM cannot learn the dimension boundary."""
        from repro.core.config import DetectorConfig
        from repro.core.detector import HotspotDetector

        matcher = PatternMatcher()
        matcher.fit(small_benchmark.training)
        pm_report = matcher.score(small_benchmark.testing)

        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        ml_report = detector.score(small_benchmark.testing)
        assert pm_report.score.extras >= ml_report.score.extras

    def test_tolerance_zero_is_strict(self, small_benchmark):
        strict = PatternMatcher(PatternMatchConfig(tolerance=0.0))
        strict.fit(small_benchmark.training)
        loose = PatternMatcher(PatternMatchConfig(tolerance=50.0))
        loose.fit(small_benchmark.training)
        strict_report = strict.score(small_benchmark.testing)
        loose_report = loose.score(small_benchmark.testing)
        total_strict = strict_report.score.hits + strict_report.score.extras
        total_loose = loose_report.score.hits + loose_report.score.extras
        assert total_strict <= total_loose


class TestSingleSvm:
    def test_single_kernel(self, small_benchmark):
        baseline = SingleSvmBaseline()
        baseline.fit(small_benchmark.training)
        assert baseline.kernel_count == 1

    def test_detects_something(self, small_benchmark):
        baseline = SingleSvmBaseline()
        baseline.fit(small_benchmark.training)
        report = baseline.score(small_benchmark.testing)
        assert report.score.hits > 0
