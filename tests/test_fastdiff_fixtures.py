"""Named exact-vs-fast regression fixtures (``tests/fixtures/fastdiff``).

Each fixture is a small GDSII layout promoted out of fuzz-mutant triage
because its geometry stresses the vectorized sweeps: degenerate
unit/hairline rects, edge- and corner-touching lattices, windows with
no geometry, rects spanning the window boundary, and a seeded mutation
soup.  The contract under test is bit-identity — the fast sweeps are
integer geometry, so every comparison here is ``==``, never a
tolerance.  ``tests/fixtures/fastdiff/generate.py`` rebuilds the corpus
deterministically.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.features.nontopo import extract_nontopo_features
from repro.geometry.grid import density_grid, density_grid_fast
from repro.geometry.rect import Rect
from repro.layout.io import load_layout_gds
from repro.mtcg.features import extract_topological_features
from repro.mtcg.graph import build_mtcg
from repro.mtcg.tiles import horizontal_tiling, vertical_tiling

FIXTURES = Path(__file__).parent / "fixtures" / "fastdiff"
CASES = sorted(p.stem for p in FIXTURES.glob("*.gds"))

#: Every fixture is compared inside each of these windows.  The second
#: window is empty for most fixtures — the empty-window case is part of
#: the contract, not an accident.
WINDOWS = [
    Rect(0, 0, 600, 600),
    Rect(600, 600, 1200, 1200),
    Rect(0, 0, 1200, 1200),
]
DENSITY_RESOLUTION = 12
DIAGONAL_MAX_GAP = 600


def _fixture_rects(name, window):
    layout = load_layout_gds(FIXTURES / f"{name}.gds")
    layer = layout.layer_numbers()[0]
    return layout.rects_in_window(layer, window)


def test_corpus_is_complete():
    """The committed corpus holds every named case, no strays."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "fastdiff_generate", FIXTURES / "generate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    assert CASES == sorted(module.CASES)
    assert 8 <= len(CASES) <= 12


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("window", WINDOWS, ids=lambda w: f"{w.x0}_{w.y0}")
class TestFastdiffFixtures:
    def test_tilings_bit_identical(self, name, window):
        rects = _fixture_rects(name, window)
        for tiling_fn in (horizontal_tiling, vertical_tiling):
            scalar = tiling_fn(rects, window, fast=False)
            fast = tiling_fn(rects, window, fast=True)
            assert [(t.rect, t.kind, t.index) for t in fast.tiles] == [
                (t.rect, t.kind, t.index) for t in scalar.tiles
            ]

    def test_constraint_graphs_bit_identical(self, name, window):
        rects = _fixture_rects(name, window)
        for tiling_fn, axis in ((horizontal_tiling, "h"), (vertical_tiling, "v")):
            tiling = tiling_fn(rects, window)
            scalar = build_mtcg(
                tiling,
                axis,
                with_diagonals=True,
                diagonal_max_gap=DIAGONAL_MAX_GAP,
                fast=False,
            )
            fast = build_mtcg(
                tiling,
                axis,
                with_diagonals=True,
                diagonal_max_gap=DIAGONAL_MAX_GAP,
                fast=True,
            )
            assert fast.edges == scalar.edges

    def test_topological_extraction_bit_identical(self, name, window):
        rects = _fixture_rects(name, window)
        exact = extract_topological_features(
            rects, window, diagonal_max_gap=DIAGONAL_MAX_GAP, compute="exact"
        )
        fast = extract_topological_features(
            rects, window, diagonal_max_gap=DIAGONAL_MAX_GAP, compute="fast"
        )
        assert fast == exact

    def test_nontopo_extraction_bit_identical(self, name, window):
        rects = _fixture_rects(name, window)
        exact = extract_nontopo_features(rects, window, compute="exact")
        fast = extract_nontopo_features(rects, window, compute="fast")
        assert fast == exact

    def test_density_grid_bit_identical(self, name, window):
        rects = [
            r
            for r in (rect.clipped(window) for rect in _fixture_rects(name, window))
            if r
        ]
        scalar = density_grid(rects, window, DENSITY_RESOLUTION)
        fast = density_grid_fast(rects, window, DENSITY_RESOLUTION)
        assert fast.dtype == scalar.dtype
        assert np.array_equal(fast, scalar)
