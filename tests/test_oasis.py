"""Tests for the OASIS substrate: codecs, writer, reader, round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.layout.layout import Layout
from repro.oasis.records import (
    MAGIC,
    OasisError,
    decode_real,
    decode_signed,
    decode_string,
    decode_unsigned,
    encode_real,
    encode_signed,
    encode_string,
    encode_unsigned,
)
from repro.oasis.reader import read_oasis, read_oasis_file
from repro.oasis.writer import write_oasis, write_oasis_file


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_unsigned_roundtrip(self, value):
        data = encode_unsigned(value)
        decoded, offset = decode_unsigned(data, 0)
        assert decoded == value and offset == len(data)

    def test_unsigned_rejects_negative(self):
        with pytest.raises(OasisError):
            encode_unsigned(-1)

    def test_truncated_raises(self):
        with pytest.raises(OasisError):
            decode_unsigned(b"\x80", 0)

    @given(st.integers(-(2**40), 2**40))
    @settings(max_examples=60, deadline=None)
    def test_signed_roundtrip(self, value):
        data = encode_signed(value)
        decoded, offset = decode_signed(data, 0)
        assert decoded == value and offset == len(data)

    def test_signed_sign_bit_convention(self):
        # -1 encodes to magnitude 1 shifted left, low bit set: 0b11 = 3
        assert encode_signed(-1) == b"\x03"
        assert encode_signed(1) == b"\x02"
        assert encode_signed(0) == b"\x00"


class TestStringsAndReals:
    @pytest.mark.parametrize("text", ["", "TOP", "A_long_cell_name_42"])
    def test_string_roundtrip(self, text):
        decoded, _ = decode_string(encode_string(text), 0)
        assert decoded == text

    @pytest.mark.parametrize("value", [0.0, 1.0, -5.0, 1000.0, 0.5, -2.25, 1e-3])
    def test_real_roundtrip(self, value):
        decoded, _ = decode_real(encode_real(value), 0)
        assert decoded == pytest.approx(value)

    def test_ratio_reals_decode(self):
        # type 4 ratio: 3/4
        data = encode_unsigned(4) + encode_unsigned(3) + encode_unsigned(4)
        value, _ = decode_real(data, 0)
        assert value == pytest.approx(0.75)

    def test_reciprocal_decode(self):
        data = encode_unsigned(2) + encode_unsigned(8)
        value, _ = decode_real(data, 0)
        assert value == pytest.approx(0.125)

    def test_zero_denominator_raises(self):
        data = encode_unsigned(2) + encode_unsigned(0)
        with pytest.raises(OasisError):
            decode_real(data, 0)


def build_layout():
    layout = Layout()
    layout.add_rect(1, Rect(0, 0, 500, 100))
    layout.add_rect(1, Rect(700, 0, 900, 400))
    layout.add_rect(2, Rect(-300, 250, -100, 800))
    layout.add_polygon(
        1,
        Polygon(
            [(1000, 1000), (1400, 1000), (1400, 1200), (1200, 1200), (1200, 1400), (1000, 1400)]
        ),
    )
    return layout


class TestRoundTrip:
    def test_magic_and_structure(self):
        data = write_oasis(build_layout())
        assert data.startswith(MAGIC)

    def test_geometry_roundtrip(self):
        layout = build_layout()
        doc = read_oasis(write_oasis(layout))
        assert doc.layout.layer_numbers() == layout.layer_numbers()
        assert doc.layout.bbox() == layout.bbox()
        for layer in layout.layer_numbers():
            original = sum(r.area for r in layout.layer(layer).rects)
            reloaded = sum(r.area for r in doc.layout.layer(layer).rects)
            assert original == reloaded

    def test_metadata(self):
        doc = read_oasis(write_oasis(build_layout(), cell_name="CHIP"))
        assert doc.version == "1.0"
        assert doc.cell_names == ["CHIP"]
        assert doc.grid_per_micron == pytest.approx(1000.0)

    def test_file_roundtrip(self, tmp_path):
        layout = build_layout()
        path = tmp_path / "layout.oas"
        write_oasis_file(layout, path)
        doc = read_oasis_file(path)
        assert doc.layout.rect_count() == layout.rect_count()

    def test_benchmark_layout_roundtrip(self):
        from repro.data.benchmarks import generate_benchmark

        bench = generate_benchmark("benchmark5", scale=0.3)
        layout = bench.testing.layout
        doc = read_oasis(write_oasis(layout))
        assert doc.layout.rect_count() == layout.rect_count()
        assert doc.layout.bbox() == layout.bbox()

    def test_detection_through_oasis(self, small_benchmark):
        """Scanning a layout that round-tripped through OASIS is identical."""
        from repro.core.config import DetectorConfig
        from repro.core.detector import HotspotDetector

        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        direct = detector.detect(small_benchmark.testing.layout)
        reloaded_layout = read_oasis(
            write_oasis(small_benchmark.testing.layout)
        ).layout
        via_oasis = detector.detect(reloaded_layout)
        assert direct.report_count == via_oasis.report_count


class TestReaderErrors:
    def test_missing_magic(self):
        with pytest.raises(OasisError):
            read_oasis(b"not oasis")

    def test_unsupported_record(self):
        data = write_oasis(build_layout())
        # splice an unsupported record id (PLACEMENT = 17) after START
        from repro.oasis.records import encode_unsigned as enc

        head_len = data.index(b"TOP") + 3
        corrupt = data[:head_len] + enc(17) + data[head_len:]
        with pytest.raises(OasisError):
            read_oasis(corrupt)

    def test_missing_end(self):
        data = write_oasis(build_layout())
        with pytest.raises(OasisError):
            read_oasis(data[:-300])


class TestAutoFormat:
    def test_save_load_auto(self, tmp_path):
        from repro.layout.io import load_layout_auto, save_layout_auto

        layout = build_layout()
        for name in ("layout.oas", "layout.gds"):
            path = tmp_path / name
            save_layout_auto(layout, path)
            again = load_layout_auto(path)
            assert again.rect_count() == layout.rect_count(), name
            assert again.bbox() == layout.bbox(), name

    def test_cli_scan_accepts_oasis(self, tmp_path):
        from repro.cli import main as cli_main
        from repro.data.benchmarks import generate_benchmark
        from repro.layout.io import save_layout_auto

        out = tmp_path / "d"
        cli_main(["generate", "--benchmark", "benchmark5", "--scale", "0.4", "--out", str(out)])
        model = tmp_path / "m.npz"
        cli_main(["train", "--clips", str(out / "benchmark5_training_clips.gds"), "--model", str(model)])
        bench = generate_benchmark("benchmark5", scale=0.4)
        oas = tmp_path / "layout.oas"
        save_layout_auto(bench.testing.layout, oas)
        assert cli_main(["scan", "--model", str(model), "--layout", str(oas)]) == 0


# ----------------------------------------------------------------------
# fuzz regression: corrupted streams must fail typed, never leak
# ----------------------------------------------------------------------
class TestFuzzedStreams:
    """Every parser failure must be a typed :class:`InputError`."""

    def test_committed_corpus_fails_typed(self):
        from repro.errors import InputError
        from tests.fuzzing import FIXTURES

        corpus = sorted((FIXTURES / "oasis").glob("*.oas"))
        assert len(corpus) >= 32
        rejected = 0
        for path in corpus:
            try:
                read_oasis(path.read_bytes())
            except InputError:
                rejected += 1
        assert rejected == len(corpus)  # corpus holds known-bad streams

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_seeded_mutations_fail_typed(self, seed):
        import random

        from repro.errors import InputError
        from tests.fuzzing import FIXTURES, mutate_stream

        pristine = (FIXTURES / "seed.oas").read_bytes()
        rng = random.Random(seed)
        mutant = mutate_stream(rng, pristine)
        try:
            read_oasis(mutant)
        except InputError:
            pass  # typed rejection is the contract

    def test_nonascii_string_is_typed(self):
        # Regression: decode_string used to leak UnicodeDecodeError.
        data = encode_string("CELL")
        corrupted = data[:1] + b"\xcf" + data[2:]
        with pytest.raises(OasisError):
            decode_string(corrupted, 0)
