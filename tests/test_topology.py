"""Tests for directional strings, Theorem-1 matching, and clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation, transform_rects_in_window
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.topology.cluster import ClassifierConfig, Cluster, TopologicalClassifier
from repro.topology.density import (
    best_alignment,
    cluster_radius,
    density_distance,
    density_distance_fixed,
    pairwise_max_distance,
)
from repro.topology.match import (
    composite_ccw,
    composite_cw,
    contains_subsequence,
    same_topology,
    strings_match,
)
from repro.topology.strings import (
    canonical_string_key,
    directional_strings,
    downward_string,
    key_orbit,
)

WINDOW = Rect(0, 0, 10, 10)
#: Fig. 5(a)-like "L": a full-height bar plus a floating arm.
L_RECTS = [Rect(0, 0, 3, 10), Rect(3, 4, 9, 6)]


def random_pattern_strategy():
    """Non-overlapping rect sets inside WINDOW."""

    def build(raw):
        rects = []
        for x0, y0, w, h in raw:
            r = Rect.maybe(x0, y0, min(10, x0 + w), min(10, y0 + h))
            if r and not any(r.overlaps(o) for o in rects):
                rects.append(r)
        return rects

    return st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(1, 5), st.integers(1, 5)),
        min_size=1,
        max_size=5,
    ).map(build).filter(lambda rects: rects)


class TestDownwardString:
    def test_paper_fig5_example(self):
        """The Fig. 5(a) L-pattern encodes <3, 10> (plus the empty slab)."""
        assert downward_string(L_RECTS, WINDOW)[:2] == (3, 10)

    def test_empty_window(self):
        assert downward_string([], WINDOW) == (2,)  # "10": one empty slab

    def test_full_window(self):
        assert downward_string([WINDOW], WINDOW) == (3,)  # "11": all block

    def test_floating_block(self):
        # space below and above: "1010" = 10
        assert downward_string([Rect(0, 3, 10, 7)], WINDOW) == (10,)

    def test_two_stacked_blocks(self):
        # from bottom: space, block, space, block, space = "101010" = 42
        rects = [Rect(0, 2, 10, 4), Rect(0, 6, 10, 8)]
        assert downward_string(rects, WINDOW) == (42,)

    def test_identical_adjacent_slabs_merged(self):
        # two abutting rects with the same y-span merge into one slice
        rects = [Rect(0, 2, 5, 4), Rect(5, 2, 10, 4)]
        assert len(downward_string(rects, WINDOW)) == 1

    def test_touching_bottom_boundary(self):
        # block on the bottom edge then space: "110" = 6
        assert downward_string([Rect(0, 0, 10, 4)], WINDOW) == (6,)


class TestDirectionalStrings:
    def test_four_sides(self):
        ds = directional_strings(L_RECTS, WINDOW)
        assert ds.bottom == (3, 10, 2)
        assert len(ds.circular()) == len(ds.bottom) + len(ds.right) + len(ds.top) + len(ds.left)

    def test_rotation_cyclically_shifts_sides(self):
        ds = directional_strings(L_RECTS, WINDOW)
        rotated = transform_rects_in_window(L_RECTS, WINDOW, Orientation.R90)
        ds_rot = directional_strings(rotated, WINDOW)
        assert ds_rot.bottom == ds.left
        assert ds_rot.right == ds.bottom
        assert ds_rot.top == ds.right
        assert ds_rot.left == ds.top

    def test_non_square_window_rejected(self):
        with pytest.raises(TopologyError):
            directional_strings([], Rect(0, 0, 10, 6))

    def test_adjacent_pairs(self):
        ds = directional_strings(L_RECTS, WINDOW)
        pairs = ds.adjacent_pairs()
        assert len(pairs) == 4
        assert pairs[0] == ds.bottom + ds.right

    def test_unknown_side_raises(self):
        ds = directional_strings(L_RECTS, WINDOW)
        with pytest.raises(TopologyError):
            ds.side("diagonal")


class TestTheorem1Matching:
    def test_contains_subsequence(self):
        assert contains_subsequence((1, 2, 3, 4), (2, 3))
        assert not contains_subsequence((1, 2, 3, 4), (3, 2))
        assert contains_subsequence((1,), ())

    def test_composites_are_doubled_circles(self):
        ds = directional_strings(L_RECTS, WINDOW)
        assert len(composite_ccw(ds)) == 2 * len(ds.circular())
        assert composite_cw(ds) == tuple(reversed(ds.circular())) * 2

    @pytest.mark.parametrize("orientation", list(Orientation))
    def test_matches_all_orientations(self, orientation):
        moved = transform_rects_in_window(L_RECTS, WINDOW, orientation)
        assert same_topology(L_RECTS, WINDOW, moved, WINDOW)

    def test_rejects_different_topology(self):
        assert not same_topology(L_RECTS, WINDOW, [Rect(0, 0, 10, 3)], WINDOW)

    def test_rejects_different_window_sizes(self):
        assert not same_topology(
            [Rect(0, 0, 3, 3)], WINDOW, [Rect(0, 0, 3, 3)], Rect(0, 0, 20, 20)
        )

    @given(random_pattern_strategy())
    @settings(max_examples=30, deadline=None)
    def test_every_pattern_matches_its_own_orientations(self, rects):
        for orientation in (Orientation.R90, Orientation.MX, Orientation.MYR90):
            moved = transform_rects_in_window(rects, WINDOW, orientation)
            assert same_topology(rects, WINDOW, moved, WINDOW)


class TestCanonicalKey:
    def test_orbit_size(self):
        ds = directional_strings(L_RECTS, WINDOW)
        assert len(key_orbit(ds)) == 8

    @given(random_pattern_strategy())
    @settings(max_examples=30, deadline=None)
    def test_invariant_under_d8(self, rects):
        key = canonical_string_key(rects, WINDOW)
        for orientation in Orientation:
            moved = transform_rects_in_window(rects, WINDOW, orientation)
            assert canonical_string_key(moved, WINDOW) == key

    def test_distinct_topologies_distinct_keys(self):
        a = canonical_string_key([Rect(0, 0, 10, 3)], WINDOW)
        b = canonical_string_key([Rect(0, 3, 10, 7)], WINDOW)
        assert a != b


class TestDensityDistance:
    def test_zero_for_identical(self):
        grid = np.random.default_rng(0).random((6, 6))
        assert density_distance(grid, grid) == 0.0

    def test_zero_for_rotated_copy(self):
        grid = np.random.default_rng(0).random((6, 6))
        assert density_distance(grid, np.rot90(grid)) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((6, 6)), rng.random((6, 6))
        assert density_distance(a, b) == pytest.approx(density_distance(b, a))

    def test_fixed_is_upper_bound(self):
        rng = np.random.default_rng(2)
        a, b = rng.random((6, 6)), rng.random((6, 6))
        assert density_distance(a, b) <= density_distance_fixed(a, b) + 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(TopologyError):
            density_distance(np.zeros((4, 4)), np.zeros((6, 6)))

    def test_non_square_raises(self):
        with pytest.raises(TopologyError):
            density_distance(np.zeros((4, 6)), np.zeros((4, 6)))

    def test_best_alignment_finds_rotation(self):
        rng = np.random.default_rng(3)
        a = rng.random((6, 6))
        name, aligned = best_alignment(a, np.rot90(a, 1))
        assert np.allclose(aligned, a)

    def test_cluster_radius_eq2(self):
        grids = [np.zeros((4, 4)), np.ones((4, 4))]
        # max distance = 16, K = 4 -> 4.0; R0 = 1 -> max(1, 4) = 4
        assert cluster_radius(grids, 1.0, 4) == pytest.approx(4.0)
        # R0 dominates when bigger
        assert cluster_radius(grids, 10.0, 4) == pytest.approx(10.0)

    def test_cluster_radius_bad_k(self):
        with pytest.raises(TopologyError):
            cluster_radius([np.zeros((2, 2))], 0.0, 0)

    def test_pairwise_max_sampling(self):
        grids = [np.full((2, 2), float(i)) for i in range(10)]
        full = pairwise_max_distance(grids, sample_limit=256)
        assert full == pytest.approx(36.0)  # |0-9| * 4 cells


def make_clip(rects, spec=None, origin=(0, 0)):
    spec = spec or ClipSpec(core_side=12, clip_side=36)
    window = spec.clip_at(*origin)
    core = spec.core_of(window)
    placed = [r.translated(core.x0, core.y0) for r in rects]
    return Clip.build(window, spec, placed, ClipLabel.HOTSPOT)


class TestTopologicalClassifier:
    def test_same_topology_clusters_together(self):
        clip_a = make_clip([Rect(0, 0, 3, 12), Rect(3, 5, 10, 7)])
        clip_b = make_clip([Rect(0, 0, 3, 12), Rect(3, 4, 10, 6)])  # same structure
        classifier = TopologicalClassifier(
            ClassifierConfig(grid_resolution=6, radius_threshold=10.0)
        )
        clusters = classifier.classify([clip_a, clip_b])
        assert len(clusters) == 1
        assert sorted(clusters[0].members) == [0, 1]

    def test_different_topology_splits(self):
        clip_a = make_clip([Rect(0, 0, 3, 12)])
        clip_b = make_clip([Rect(0, 0, 12, 3), Rect(0, 6, 12, 9)])
        classifier = TopologicalClassifier(ClassifierConfig(grid_resolution=6))
        clusters = classifier.classify([clip_a, clip_b])
        assert len(clusters) == 2

    def test_density_split_within_string_group(self):
        # same topology (floating block) but very different densities
        clip_a = make_clip([Rect(4, 4, 6, 6)])
        clip_b = make_clip([Rect(1, 1, 11, 11)])
        classifier = TopologicalClassifier(
            ClassifierConfig(grid_resolution=6, radius_threshold=0.5, expected_cluster_count=100)
        )
        clusters = classifier.classify([clip_a, clip_b])
        assert len(clusters) == 2

    def test_centroid_member(self):
        clips = [
            make_clip([Rect(4, 4, 6, 6)]),
            make_clip([Rect(4, 4, 6, 7)]),
            make_clip([Rect(4, 4, 6, 8)]),
        ]
        classifier = TopologicalClassifier(
            ClassifierConfig(grid_resolution=6, radius_threshold=50.0)
        )
        clusters = classifier.classify(clips)
        assert len(clusters) == 1
        assert clusters[0].centroid_member() in (0, 1, 2)

    def test_assign_routes_to_matching_key(self):
        clip_a = make_clip([Rect(0, 0, 3, 12)])
        clip_b = make_clip([Rect(0, 0, 12, 3), Rect(0, 6, 12, 9)])
        classifier = TopologicalClassifier(ClassifierConfig(grid_resolution=6))
        clusters = classifier.classify([clip_a, clip_b])
        probe = make_clip([Rect(0, 0, 4, 12)])  # bar: same topology as clip_a
        index = classifier.assign(probe, clusters)
        assert index is not None
        assert 0 in clusters[index].members

    def test_assign_unknown_returns_none(self):
        clip_a = make_clip([Rect(0, 0, 3, 12)])
        classifier = TopologicalClassifier(ClassifierConfig(grid_resolution=6))
        clusters = classifier.classify([clip_a])
        probe = make_clip([Rect(0, 0, 12, 3), Rect(0, 5, 12, 8), Rect(0, 10, 5, 12)])
        assert classifier.assign(probe, clusters) is None

    def test_empty_cluster_centroid_raises(self):
        with pytest.raises(TopologyError):
            Cluster(string_key=("x",)).centroid_member()

    def test_config_validation(self):
        with pytest.raises(TopologyError):
            ClassifierConfig(grid_resolution=0)
        with pytest.raises(TopologyError):
            ClassifierConfig(expected_cluster_count=0)
        with pytest.raises(TopologyError):
            ClassifierConfig(radius_threshold=-1.0)
