"""Fleet HA: standby replication, epoch fencing, failover bit-identity.

The failover invariant extends the fleet's core one: killing the
primary coordinator mid-scan with a warm standby attached changes
nothing observable.  The standby promotes under a larger leader epoch,
workers re-home to it, every shard is accepted exactly once (mirrored
from the feed or recomputed after re-lease — never both), and the
merged scan is bit-identical to a quiet single-node run.  The epoch
fence is what makes "exactly once" hold against zombie primaries:
any RPC carrying an older epoch gets 409 and changes no state.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.cache import wrap_blob
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.errors import FleetError
from repro.fleet import (
    CoordinatorChannel,
    FleetClient,
    FleetCoordinator,
    FleetOptions,
    FleetWorker,
    StandbyCoordinator,
)
from repro.fleet.coordinator import EPOCH_FILE
from repro.fleet.protocol import wait_until
from repro.work.shard import encode_shard_record, evaluate_shard


@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture()
def detached(fitted):
    fitted.attach_cache(None)
    yield fitted
    fitted.attach_cache(None)


def signature(detector, report):
    """Everything a scan observably produced, in comparable form."""
    cores = tuple(
        (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
        for clip in report.reports
    )
    extraction = report.extraction
    funnel = (
        extraction.anchor_count,
        extraction.rejected_density,
        extraction.rejected_count,
        extraction.rejected_boundary,
        len(extraction.clips),
    )
    margins = detector.margins(extraction.clips)
    return cores, funnel, margins


def assert_identical(left, right):
    assert left[0] == right[0]  # hotspot report set
    assert left[1] == right[1]  # extraction funnel counts
    assert np.array_equal(left[2], right[2])  # margins, bit-identical


@pytest.fixture(scope="module")
def reference(fitted, small_benchmark):
    """Single-node baseline signature plus one pushable blob per shard."""
    fitted.attach_cache(None)
    layout = small_benchmark.testing.layout
    baseline = signature(fitted, fitted.detect(layout))
    shard_map = FleetCoordinator(fitted, layout)
    blobs = {}
    for shard_id, (_, anchors) in enumerate(shard_map.cells):
        record = evaluate_shard(
            fitted.config, fitted.model_, layout, 1, anchors
        )
        record.shard_id = shard_id
        blobs[shard_id] = wrap_blob(encode_shard_record(record))
    return baseline, blobs


def merged_signature(detector, layout, coordinator):
    return signature(
        detector, detector.detect(layout, scan=coordinator.result())
    )


# ----------------------------------------------------------------------
# epoch fencing
# ----------------------------------------------------------------------
class TestEpochFence:
    def test_stale_lease_heartbeat_and_push_are_fenced(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        coordinator = FleetCoordinator(detached, layout)
        stale = json.dumps(
            {
                "worker": "w",
                "fingerprint": coordinator.fingerprint,
                "epoch": coordinator.epoch - 1,
            }
        ).encode()
        status, payload, _ = coordinator.handle(
            "POST", "/fleet/v1/lease", stale, {}
        )
        assert status == 409
        assert payload["status"] == "stale_epoch"
        assert payload["expected"] == coordinator.epoch
        status, payload, _ = coordinator.handle(
            "POST",
            "/fleet/v1/heartbeat",
            json.dumps(
                {"worker": "w", "shard": 0, "lease": 1, "epoch": 99}
            ).encode(),
            {},
        )
        assert status == 409 and payload["status"] == "stale_epoch"
        status, payload, _ = coordinator.handle(
            "POST", "/fleet/v1/push?shard=0&lease=1&epoch=0", b"junk", {}
        )
        assert status == 409 and payload["status"] == "stale_epoch"
        assert coordinator.stale_epoch_fenced == 3
        # Nothing changed: the fence fires before any state mutation.
        assert coordinator.pushes_accepted == 0
        assert coordinator.leases_granted == 0

    def test_epochless_requests_pass(self, detached, small_benchmark):
        # Hand-rolled clients and pre-HA peers send no epoch; they are
        # served at the current one.
        layout = small_benchmark.testing.layout
        coordinator = FleetCoordinator(detached, layout)
        body = json.dumps(
            {"worker": "w", "fingerprint": coordinator.fingerprint}
        ).encode()
        status, payload, _ = coordinator.handle(
            "POST", "/fleet/v1/lease", body, {}
        )
        assert status == 200 and payload["status"] == "lease"

    def test_set_epoch_must_increase(self, detached, small_benchmark):
        coordinator = FleetCoordinator(
            detached, small_benchmark.testing.layout
        )
        with pytest.raises(FleetError):
            coordinator.set_epoch(coordinator.epoch)
        coordinator.set_epoch(coordinator.epoch + 3)
        assert coordinator.epoch == 4

    def test_epoch_monotone_across_journal_restarts(
        self, detached, small_benchmark, tmp_path
    ):
        layout = small_benchmark.testing.layout
        journal = tmp_path / "journal"

        def restart():
            return FleetCoordinator(
                detached,
                layout,
                options=FleetOptions(journal_dir=journal, resume=True),
            )

        first = restart()
        assert first.epoch == 1
        assert (journal / EPOCH_FILE).exists()
        second = restart()
        assert second.epoch == 2  # never re-serves a dead leader's epoch
        second.set_epoch(7)
        third = restart()
        assert third.epoch == 8


# ----------------------------------------------------------------------
# replication + standby surface
# ----------------------------------------------------------------------
class TestStandbyReplication:
    def test_standby_mirrors_feed_and_rejects_work(
        self, detached, small_benchmark, reference, tmp_path
    ):
        layout = small_benchmark.testing.layout
        baseline, blobs = reference
        primary = FleetCoordinator(detached, layout).start()
        standby = StandbyCoordinator(
            detached,
            layout,
            primary.url,
            options=FleetOptions(
                journal_dir=tmp_path / "standby-journal", keep_journal=True
            ),
            probe_interval_s=0.1,
        ).start()
        try:
            # Pre-promotion surface: config says standby, work RPCs 503.
            code, config = FleetClient(standby.url).get_json(
                "/fleet/v1/config"
            )
            assert code == 200 and config["role"] == "standby"
            code, answer = FleetClient(standby.url).post_json(
                "/fleet/v1/lease", {"worker": "w"}
            )
            assert code == 503 and answer["status"] == "standby"
            code, answer = FleetClient(standby.url).post_json(
                "/fleet/v1/push?shard=0&lease=1", {}
            )
            assert code == 503

            # Push everything to the primary; the standby tails it all.
            for shard_id, blob in blobs.items():
                code, answer = FleetClient(primary.url).post_blob(
                    f"/fleet/v1/push?shard={shard_id}&lease=1"
                    f"&epoch={primary.epoch}",
                    blob,
                )
                assert code == 200 and answer["status"] == "ok"
            assert wait_until(
                lambda: standby.mirrored == len(primary.shards),
                timeout_s=30.0,
            )
            assert not standby.promoted.is_set()
            assert standby.inner.wait(timeout=5.0)
            # The mirror is complete and merges bit-identically.
            assert_identical(
                baseline, merged_signature(detached, layout, standby.inner)
            )
        finally:
            standby.stop()
            primary.stop()

    def test_forced_promotion_via_http(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        primary = FleetCoordinator(detached, layout).start()
        standby = StandbyCoordinator(
            detached, layout, primary.url, probe_interval_s=0.1
        ).start()
        try:
            code, answer = FleetClient(standby.url).post_json(
                "/fleet/v1/promote", {}
            )
            assert code == 200 and answer["status"] == "ok"
            assert answer["epoch"] > primary.epoch
            code, answer = FleetClient(standby.url).post_json(
                "/fleet/v1/promote", {}
            )
            assert answer["status"] == "already_promoted"
            # Promoted: now a leader that grants leases.
            code, config = FleetClient(standby.url).get_json(
                "/fleet/v1/config"
            )
            assert config["role"] == "primary"
        finally:
            standby.stop()
            primary.stop()


# ----------------------------------------------------------------------
# end-to-end failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_primary_death_promotes_and_stays_bit_identical(
        self, detached, small_benchmark, reference, tmp_path
    ):
        layout = small_benchmark.testing.layout
        baseline, _ = reference
        probe = 0.2
        primary = FleetCoordinator(
            detached,
            layout,
            options=FleetOptions(
                lease_ttl_s=1.5,
                journal_dir=tmp_path / "primary-journal",
                keep_journal=True,
            ),
        ).start()
        standby = StandbyCoordinator(
            detached,
            layout,
            primary.url,
            options=FleetOptions(
                lease_ttl_s=1.5,
                journal_dir=tmp_path / "standby-journal",
                keep_journal=True,
            ),
            probe_interval_s=probe,
            max_missed_probes=2,
        ).start()
        endpoints = [primary.url, standby.url]
        workers = [
            FleetWorker(
                endpoints, detached, layout, f"ha-w{i}", status_server=False
            )
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        try:
            for thread in threads:
                thread.start()
            # Let real work land on the primary, then kill it mid-scan.
            assert wait_until(
                lambda: primary.pushes_accepted >= 1, timeout_s=60.0
            )
            primary.stop()
            killed = time.monotonic()
            assert wait_until(
                lambda: standby.promoted.is_set(), timeout_s=30.0
            )
            # Death is declared after max_missed_probes probe periods
            # (plus per-probe connect timeouts and scheduler slack).
            assert time.monotonic() - killed < 10 * probe + 5.0
            assert standby.inner.epoch > primary.epoch
            assert standby.inner.wait(timeout=120.0), standby.inner.status()
            for thread in threads:
                thread.join(timeout=30.0)
            # Exactly-once: every shard came from the mirror or from a
            # post-promotion push, never both.
            assert (
                standby.mirrored + standby.inner.pushes_accepted
                == len(standby.inner.shards)
            )
            assert_identical(
                baseline, merged_signature(detached, layout, standby.inner)
            )
            # The workers finished on the new leader's epoch.
            for worker in workers:
                assert worker.epoch == standby.inner.epoch
            assert sum(worker.rehomes for worker in workers) >= 1
        finally:
            for worker in workers:
                worker.stop()
            standby.stop()
            primary.stop()


# ----------------------------------------------------------------------
# worker channel + heartbeat visibility
# ----------------------------------------------------------------------
class TestWorkerChannel:
    def test_channel_parses_and_cycles(self):
        channel = CoordinatorChannel("http://127.0.0.1:1, http://127.0.0.1:2")
        assert len(channel) == 2
        first = channel.url
        channel.advance()
        assert channel.url != first
        channel.advance()
        assert channel.url == first
        with pytest.raises(FleetError):
            CoordinatorChannel("")

    def test_heartbeat_failures_are_counted(
        self, detached, small_benchmark, monkeypatch
    ):
        # A worker whose coordinator vanishes mid-lease must surface the
        # failed heartbeats (metric + counter) instead of swallowing
        # them silently.
        import repro.fleet.worker as worker_module

        layout = small_benchmark.testing.layout
        coordinator = FleetCoordinator(detached, layout)
        lease_doc = coordinator._grant("hb-w")
        assert lease_doc["status"] == "lease"

        real_evaluate = worker_module.evaluate_shard

        def slow_evaluate(*args, **kwargs):
            time.sleep(0.4)  # hold the lease across several beat periods
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(worker_module, "evaluate_shard", slow_evaluate)
        worker = FleetWorker(
            "http://127.0.0.1:9", detached, layout, "hb-w",
            status_server=False,
        )
        worker._work_lease(lease_doc, layer=1, ttl_s=0.3)
        assert worker.heartbeat_failures >= 1
        assert worker._m_heartbeat_failures.labels().value >= 1
        # The push to the dead coordinator was dropped as stale, not
        # raised out of the lease loop.
        assert worker.shards_stale == 1


# ----------------------------------------------------------------------
# property: pushes x promotions x stale retries -> exactly once
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402


class TestInterleavingProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_each_shard_accepted_exactly_once(
        self, data, fitted, small_benchmark, reference
    ):
        fitted.attach_cache(None)
        layout = small_benchmark.testing.layout
        baseline, blobs = reference
        coordinator = FleetCoordinator(fitted, layout)
        shard_ids = sorted(blobs)
        order = data.draw(st.permutations(shard_ids))

        def push(shard_id, epoch):
            return coordinator.handle(
                "POST",
                f"/fleet/v1/push?shard={shard_id}&lease=1&epoch={epoch}",
                blobs[shard_id],
                {},
            )

        for shard_id in order:
            if data.draw(st.booleans(), label=f"promote<{shard_id}"):
                coordinator.set_epoch(coordinator.epoch + 1)
            if data.draw(st.booleans(), label=f"stale<{shard_id}"):
                # A zombie-epoch push: fenced, never merged.
                status, payload, _ = push(shard_id, coordinator.epoch - 1)
                assert status == 409
                assert payload["status"] == "stale_epoch"
            status, payload, _ = push(shard_id, coordinator.epoch)
            assert status == 200 and payload["status"] == "ok"
            if data.draw(st.booleans(), label=f"dup<{shard_id}"):
                # A duplicate under the current epoch: first push won.
                status, payload, _ = push(shard_id, coordinator.epoch)
                assert status == 200 and payload["status"] == "stale"

        assert coordinator.pushes_accepted == len(shard_ids)
        assert_identical(
            baseline, merged_signature(fitted, layout, coordinator)
        )
