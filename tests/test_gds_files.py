"""On-disk GDSII and JSON round trips (tmp_path based)."""

import pytest

from repro.data.benchmarks import ICCAD_SPEC, generate_benchmark
from repro.gdsii.reader import read_library_file
from repro.gdsii.records import RecordType, iter_records
from repro.layout.io import (
    load_clipset_gds,
    load_clipset_json,
    load_layout_gds,
    save_clipset_gds,
    save_clipset_json,
    save_layout_gds,
)


@pytest.fixture(scope="module")
def bench():
    return generate_benchmark("benchmark5", scale=0.5)


class TestLayoutFiles:
    def test_layout_gds_roundtrip(self, bench, tmp_path):
        path = tmp_path / "layout.gds"
        save_layout_gds(bench.testing.layout, path)
        assert path.stat().st_size > 0
        again = load_layout_gds(path)
        assert again.rect_count() == bench.testing.layout.rect_count()
        assert again.bbox() == bench.testing.layout.bbox()

    def test_layout_gds_is_wellformed_stream(self, bench, tmp_path):
        path = tmp_path / "layout.gds"
        save_layout_gds(bench.testing.layout, path)
        records = list(iter_records(path.read_bytes()))
        assert records[0].rtype is RecordType.HEADER
        assert records[-1].rtype is RecordType.ENDLIB
        assert any(r.rtype is RecordType.BOUNDARY for r in records)

    def test_library_file_reader(self, bench, tmp_path):
        path = tmp_path / "layout.gds"
        save_layout_gds(bench.testing.layout, path)
        library = read_library_file(path)
        assert library.single_top().name == "TOP"


class TestClipSetFiles:
    def test_clipset_gds_roundtrip(self, bench, tmp_path):
        path = tmp_path / "clips.gds"
        save_clipset_gds(bench.training, path)
        again = load_clipset_gds(path, ICCAD_SPEC)
        assert len(again) == len(bench.training)
        assert len(again.hotspots()) == len(bench.training.hotspots())
        assert [c.rects for c in again] == [c.rects for c in bench.training]

    def test_clipset_json_roundtrip(self, bench, tmp_path):
        path = tmp_path / "clips.json"
        save_clipset_json(bench.training, path)
        again = load_clipset_json(path)
        assert len(again) == len(bench.training)
        assert [c.window for c in again] == [c.window for c in bench.training]
        assert [c.label for c in again] == [c.label for c in bench.training]

    def test_detector_trains_from_reloaded_clips(self, bench, tmp_path):
        """Training through the GDSII round trip changes nothing."""
        from repro.core.config import DetectorConfig
        from repro.core.detector import HotspotDetector

        path = tmp_path / "clips.gds"
        save_clipset_gds(bench.training, path)
        reloaded = load_clipset_gds(path, ICCAD_SPEC)

        direct = HotspotDetector(DetectorConfig.ours())
        direct.fit(bench.training)
        via_disk = HotspotDetector(DetectorConfig.ours())
        via_disk.fit(reloaded)

        probe = bench.training.hotspots()[:4]
        import numpy as np

        assert np.allclose(direct.margins(probe), via_disk.margins(probe))
