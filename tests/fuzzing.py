"""Shared byte-stream mutation for the parser fuzz tests.

The committed corpus under ``tests/fixtures/fuzz/`` was produced by
running exactly these operators (seed 20260806) against the pristine
``seed.gds``/``seed.oas`` streams and keeping mutants the parsers
rejected; the live tests re-run the same operators with fresh seeds so
coverage keeps growing without the corpus going stale.
"""

from __future__ import annotations

import random
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures" / "fuzz"


def mutate_stream(rng: random.Random, data: bytes) -> bytes:
    """One random structural corruption of a binary stream."""
    data = bytearray(data)
    op = rng.randrange(6)
    if op == 0:  # flip bytes
        for _ in range(rng.randint(1, 8)):
            data[rng.randrange(len(data))] ^= rng.randint(1, 255)
    elif op == 1:  # truncate
        del data[rng.randrange(1, len(data)):]
    elif op == 2:  # insert random bytes
        pos = rng.randrange(len(data))
        data[pos:pos] = bytes(rng.randint(0, 255) for _ in range(rng.randint(1, 16)))
    elif op == 3:  # delete a span
        pos = rng.randrange(len(data) - 1)
        del data[pos : pos + rng.randint(1, 32)]
    elif op == 4:  # duplicate a span
        pos = rng.randrange(len(data) - 1)
        data[pos:pos] = data[pos : pos + rng.randint(1, 32)]
    else:  # zero-fill a span
        pos = rng.randrange(len(data) - 1)
        for i in range(pos, min(len(data), pos + rng.randint(1, 32))):
            data[i] = 0
    return bytes(data)
