"""Fleet observability: metrics merge algebra, trace merging, federation.

The merge algebra must be exact: federating N per-process metric states
has to produce the registry that one process observing the union of all
observations would hold (property-tested below).  Chrome-trace merging
must land every process's spans on one shared timeline — one row per
fleet node, all stamped with the scan's root request id.  And the wire
layer must carry that request id on every RPC, echoing it on every
response (error responses included).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetClient, FleetHTTPServer, metrics_routes
from repro.fleet.protocol import JSON_TYPE
from repro.obs import (
    REQUEST_ID_HEADER,
    TRACE_PARENT_HEADER,
    MetricsAggregator,
    Tracer,
    bind_trace_context,
    current_request_id,
    current_trace_parent,
    merge_chrome_traces,
    set_tracer,
    span_document,
    trace,
    trace_headers,
)
from repro.serve.metrics import MetricsRegistry, merge_metrics_states


# ----------------------------------------------------------------------
# metrics merge algebra
# ----------------------------------------------------------------------
BUCKETS = (0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=20
)


def _registry_observing(counter_incs, histogram_values) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("ops_total", "ops", labels=("kind",))
    for kind, amount in counter_incs:
        counter.labels(kind).inc(amount)
    histogram = registry.histogram("lat_seconds", "latency", buckets=BUCKETS)
    for value in histogram_values:
        histogram.labels().observe(value)
    return registry


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(
        shards=st.lists(
            st.tuples(
                st.lists(
                    st.tuples(
                        st.sampled_from(["get", "put"]),
                        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                    ),
                    max_size=10,
                ),
                observations,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_merge_of_n_states_equals_one_registry_observing_union(
        self, shards
    ):
        """merge(state_1..state_n) == registry(union of observations)."""
        states = [
            _registry_observing(incs, values).export_state()
            for incs, values in shards
        ]
        merged = merge_metrics_states(states)
        union = _registry_observing(
            [pair for incs, _ in shards for pair in incs],
            [value for _, values in shards for value in values],
        )
        merged_state = merged.export_state()
        union_state = union.export_state()
        assert [f["name"] for f in merged_state["families"]] == [
            f["name"] for f in union_state["families"]
        ]
        for left, right in zip(
            merged_state["families"], union_state["families"]
        ):
            assert left["kind"] == right["kind"]
            assert left["label_names"] == right["label_names"]
            for lchild, rchild in zip(left["children"], right["children"]):
                assert lchild["labels"] == rchild["labels"]
                if left["kind"] == "histogram":
                    assert lchild["bounds"] == rchild["bounds"]
                    assert lchild["counts"] == rchild["counts"]  # exact
                    assert lchild["count"] == rchild["count"]
                    assert math.isclose(
                        lchild["sum"], rchild["sum"], rel_tol=1e-9, abs_tol=1e-9
                    )
                else:
                    assert math.isclose(
                        lchild["value"],
                        rchild["value"],
                        rel_tol=1e-9,
                        abs_tol=1e-9,
                    )

    def test_export_absorb_round_trip_renders_identically(self):
        registry = _registry_observing(
            [("get", 3.0), ("put", 1.0)], [0.05, 0.5, 5.0, 50.0]
        )
        clone = MetricsRegistry()
        clone.absorb_state(registry.export_state())
        assert clone.render() == registry.render()

    def test_histogram_bounds_mismatch_raises(self):
        left = MetricsRegistry()
        left.histogram("h_seconds", buckets=(0.1, 1.0)).labels().observe(0.2)
        right = MetricsRegistry()
        right.histogram("h_seconds", buckets=(0.5, 5.0)).labels().observe(0.2)
        with pytest.raises(ValueError, match="bucket mismatch"):
            right.absorb_state(left.export_state())

    def test_kind_clash_raises(self):
        left = MetricsRegistry()
        left.counter("thing").labels().inc()
        right = MetricsRegistry()
        right.gauge("thing").labels().set(2.0)
        with pytest.raises(ValueError):
            right.absorb_state(left.export_state())

    def test_label_sets_are_preserved_and_disjoint_children_created(self):
        left = MetricsRegistry()
        left.counter("ops_total", labels=("kind",)).labels("get").inc(2)
        right = MetricsRegistry()
        right.counter("ops_total", labels=("kind",)).labels("put").inc(5)
        merged = merge_metrics_states(
            [left.export_state(), right.export_state()]
        )
        rendered = merged.render()
        assert 'repro_ops_total{kind="get"} 2' in rendered
        assert 'repro_ops_total{kind="put"} 5' in rendered

    def test_gauges_federate_by_summing(self):
        states = []
        for depth in (3.0, 4.0):
            registry = MetricsRegistry()
            registry.gauge("queue_depth").labels().set(depth)
            states.append(registry.export_state())
        merged = merge_metrics_states(states)
        assert "repro_queue_depth 7" in merged.render()


# ----------------------------------------------------------------------
# trace context propagation
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_unbound_untraced_headers_are_empty(self):
        assert trace_headers() == {}
        assert current_request_id() is None

    def test_bind_nest_restore(self):
        with bind_trace_context("outer", "parent-a"):
            assert current_request_id() == "outer"
            assert current_trace_parent() == "parent-a"
            assert trace_headers()[REQUEST_ID_HEADER] == "outer"
            with bind_trace_context("inner"):
                assert current_request_id() == "inner"
                assert current_trace_parent() is None
            assert current_request_id() == "outer"
        assert current_request_id() is None

    def test_recording_tracer_stamps_current_span_as_parent(self):
        set_tracer(Tracer())
        try:
            with bind_trace_context("rid-1"):
                with trace("outer.work"):
                    headers = trace_headers()
            assert headers[REQUEST_ID_HEADER] == "rid-1"
            name, _, span_id = headers[TRACE_PARENT_HEADER].partition(":")
            assert name == "outer.work"
            assert span_id
        finally:
            set_tracer(None)


class _EchoApp:
    """Answers with the request id its handler thread sees bound."""

    def handle(self, method, path, body, headers):
        if path == "/boom":
            raise RuntimeError("kaboom")
        return 200, {"bound": current_request_id()}, JSON_TYPE


class TestRequestIdOnTheWire:
    def test_caller_id_is_bound_and_echoed(self):
        with FleetHTTPServer(_EchoApp()) as server:
            client = FleetClient(server.url)
            status, payload, headers = client.request_full(
                "GET", "/x", headers={REQUEST_ID_HEADER: "rid-wire"}
            )
            assert status == 200
            assert headers[REQUEST_ID_HEADER] == "rid-wire"
            assert b'"bound": "rid-wire"' in payload

    def test_missing_id_is_minted_and_echoed(self):
        with FleetHTTPServer(_EchoApp()) as server:
            _, payload, headers = FleetClient(server.url).request_full(
                "GET", "/x"
            )
            minted = headers[REQUEST_ID_HEADER]
            assert minted
            assert minted.encode() in payload  # handler saw the same id

    def test_error_responses_carry_the_id(self):
        with FleetHTTPServer(_EchoApp()) as server:
            status, _, headers = FleetClient(server.url).request_full(
                "GET", "/boom", headers={REQUEST_ID_HEADER: "rid-err"}
            )
            assert status == 500
            assert headers[REQUEST_ID_HEADER] == "rid-err"

    def test_bound_context_rides_outbound_requests(self):
        with FleetHTTPServer(_EchoApp()) as server:
            client = FleetClient(server.url)
            with bind_trace_context("rid-out"):
                _, payload, _ = client.request_full("GET", "/x")
            assert b'"bound": "rid-out"' in payload


# ----------------------------------------------------------------------
# span shipping + chrome merge
# ----------------------------------------------------------------------
def _traced_document(role, epoch, request_id="rid-m", names=("a.one",)):
    tracer = Tracer()
    tracer.epoch_unix = epoch
    for name in names:
        with tracer.span(name):
            pass
    return span_document(tracer, role, request_id=request_id)


class TestSpanDocument:
    def test_since_slices_already_shipped_spans(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        doc = span_document(tracer, "worker:w0", since=0)
        assert [s["name"] for s in doc["spans"]] == ["first"]
        with tracer.span("second"):
            pass
        incremental = span_document(tracer, "worker:w0", since=1)
        assert [s["name"] for s in incremental["spans"]] == ["second"]


class TestMergeChromeTraces:
    def test_one_row_per_role_coordinator_first(self):
        merged = merge_chrome_traces(
            [
                _traced_document("worker:w1", 1000.0),
                _traced_document("coordinator", 1000.0),
                _traced_document("worker:w0", 1000.0),
            ]
        )
        names = {
            event["pid"]: event["args"]["name"]
            for event in merged["traceEvents"]
            if event["name"] == "process_name"
        }
        assert names == {1: "coordinator", 2: "worker:w0", 3: "worker:w1"}
        assert merged["metadata"]["request_id"] == "rid-m"

    def test_respawned_worker_reuses_its_role_row(self):
        # Two different OS processes (same role) — one Chrome row.
        first = _traced_document("worker:w0", 1000.0)
        second = _traced_document("worker:w0", 1001.0)
        second["pid"] = first["pid"] + 1
        merged = merge_chrome_traces([first, second])
        span_pids = {
            e["pid"] for e in merged["traceEvents"] if e["ph"] == "X"
        }
        assert span_pids == {1}
        # ...but distinct threads, so the rows don't visually overlap.
        span_tids = {
            e["tid"] for e in merged["traceEvents"] if e["ph"] == "X"
        }
        assert len(span_tids) == 2

    def test_timestamps_rebase_onto_the_earliest_epoch(self):
        early = _traced_document("coordinator", 1000.0)
        late = _traced_document("worker:w0", 1002.5)
        merged = merge_chrome_traces([late, early])
        by_role = {}
        rows = {
            e["pid"]: e["args"]["name"]
            for e in merged["traceEvents"]
            if e["name"] == "process_name"
        }
        for event in merged["traceEvents"]:
            if event["ph"] == "X":
                by_role[rows[event["pid"]]] = event["ts"]
        # The late process's spans are shifted by the epoch delta (2.5s).
        assert by_role["worker:w0"] - by_role["coordinator"] >= 2.5e6 - 1e4

    def test_spans_carry_the_root_request_id(self):
        merged = merge_chrome_traces([_traced_document("coordinator", 1.0)])
        spans = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert spans and all(
            e["args"]["request_id"] == "rid-m" for e in spans
        )

    def test_empty_documents_are_filtered(self):
        assert merge_chrome_traces([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
        assert merge_chrome_traces([None, {}])["traceEvents"] == []


# ----------------------------------------------------------------------
# metrics federation over live members
# ----------------------------------------------------------------------
class _MetricsApp:
    def __init__(self, registry) -> None:
        self.registry = registry

    def handle(self, method, path, body, headers):
        routed = metrics_routes(self.registry, method, path)
        if routed is not None:
            return routed
        return 404, {"error": "no route"}, JSON_TYPE


class TestMetricsAggregator:
    def test_scrapes_urls_and_callables_and_flags_down_members(self):
        left = MetricsRegistry()
        left.counter("ops_total").labels().inc(2)
        right = MetricsRegistry()
        right.counter("ops_total").labels().inc(3)
        with FleetHTTPServer(_MetricsApp(left)) as one:
            aggregator = MetricsAggregator(timeout_s=0.5)
            aggregator.register("node-a", one.url)
            aggregator.register("node-b", right.export_state)
            aggregator.register("node-dead", "http://127.0.0.1:9")
            rendered = aggregator.render()
        assert "repro_ops_total 5" in rendered
        assert 'fleet_member_up{member="node-a"} 1' in rendered
        assert 'fleet_member_up{member="node-b"} 1' in rendered
        assert 'fleet_member_up{member="node-dead"} 0' in rendered

    def test_malformed_member_state_counts_as_down(self):
        aggregator = MetricsAggregator()
        aggregator.register("bad", lambda: {"families": [{"name": ""}]})
        rendered = aggregator.render()
        assert 'fleet_member_up{member="bad"} 0' in rendered

    def test_metrics_routes_serves_text_and_state(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").labels().inc()
        with FleetHTTPServer(_MetricsApp(registry)) as server:
            client = FleetClient(server.url)
            status, payload, content_type = client.request("GET", "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert b"repro_ops_total 1" in payload
            status, state = client.get_json("/metrics/state")
            assert status == 200
            assert state["families"][0]["name"] == "repro_ops_total"
