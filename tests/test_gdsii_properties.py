"""Property-based GDSII round trips with hypothesis-generated libraries."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gdsii.library import (
    GdsARef,
    GdsBoundary,
    GdsLibrary,
    GdsPath,
    GdsSRef,
    GdsTransform,
)
from repro.gdsii.reader import read_library
from repro.gdsii.records import DataType, RecordType, encode_record, iter_records
from repro.gdsii.writer import write_library
from repro.geometry.point import Point
from repro.geometry.rect import Rect

names = st.text(
    alphabet=st.sampled_from("ABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789"),
    min_size=1,
    max_size=16,
)
coords = st.integers(-1_000_000, 1_000_000)


@st.composite
def boundaries(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(1, 10_000))
    h = draw(st.integers(1, 10_000))
    layer = draw(st.integers(0, 255))
    datatype = draw(st.integers(0, 255))
    return GdsBoundary.from_rect(layer, datatype, Rect(x0, y0, x0 + w, y0 + h))


@st.composite
def libraries(draw):
    library = GdsLibrary(name=draw(names))
    leaf = library.new_structure("LEAF")
    for boundary in draw(st.lists(boundaries(), min_size=1, max_size=6)):
        leaf.add(boundary)
    if draw(st.booleans()):
        leaf.add(
            GdsPath(
                draw(st.integers(0, 63)),
                0,
                draw(st.integers(2, 500)) * 2,
                [Point(0, 0), Point(draw(st.integers(1, 10_000)), 0)],
            )
        )
    top = library.new_structure("TOP")
    top.add(
        GdsSRef(
            "LEAF",
            Point(draw(coords), draw(coords)),
            GdsTransform(
                reflect_x=draw(st.booleans()),
                rotation_degrees=draw(st.sampled_from((0, 90, 180, 270))),
            ),
        )
    )
    if draw(st.booleans()):
        top.add(
            GdsARef(
                "LEAF",
                Point(draw(coords), draw(coords)),
                columns=draw(st.integers(1, 4)),
                rows=draw(st.integers(1, 4)),
                col_step=Point(draw(st.integers(1, 5_000)), 0),
                row_step=Point(0, draw(st.integers(1, 5_000))),
            )
        )
    return library


class TestRoundTripProperties:
    @given(libraries())
    @settings(max_examples=30, deadline=None)
    def test_write_read_write_fixpoint(self, library):
        once = write_library(library)
        again = write_library(read_library(once))
        assert once == again

    @given(libraries())
    @settings(max_examples=30, deadline=None)
    def test_flatten_invariant_under_roundtrip(self, library):
        from repro.gdsii.flatten import flatten_top

        direct = flatten_top(library)
        reloaded = flatten_top(read_library(write_library(library)))
        assert len(direct) == len(reloaded)
        direct_boxes = sorted(p.bbox() for _, _, p in direct)
        reloaded_boxes = sorted(p.bbox() for _, _, p in reloaded)
        assert direct_boxes == reloaded_boxes

    @given(libraries())
    @settings(max_examples=20, deadline=None)
    def test_stream_structure(self, library):
        data = write_library(library)
        records = list(iter_records(data))
        assert records[0].rtype is RecordType.HEADER
        assert records[-1].rtype is RecordType.ENDLIB
        begins = sum(1 for r in records if r.rtype is RecordType.BGNSTR)
        ends = sum(1 for r in records if r.rtype is RecordType.ENDSTR)
        assert begins == ends == len(library.structures)

    @given(st.integers(0, 2**15 - 1))
    @settings(max_examples=50, deadline=None)
    def test_int2_record_roundtrip(self, value):
        from repro.gdsii.records import decode_record

        data = encode_record(RecordType.LAYER, DataType.INT2, [value])
        record, _ = decode_record(data, 0)
        assert record.ints() == [value]


# ----------------------------------------------------------------------
# fuzz regression: corrupted streams must fail typed, never leak
# ----------------------------------------------------------------------
class TestFuzzedStreams:
    """Every parser failure must be a typed :class:`InputError`.

    The committed corpus pins historical crashers (e.g. a raw
    ``UnicodeDecodeError`` out of a string record); the seeded live
    mutations keep probing fresh corruptions deterministically.
    """

    def test_committed_corpus_fails_typed(self):
        from repro.errors import InputError
        from tests.fuzzing import FIXTURES

        corpus = sorted((FIXTURES / "gdsii").glob("*.gds"))
        assert len(corpus) >= 32
        rejected = 0
        for path in corpus:
            try:
                read_library(path.read_bytes())
            except InputError:
                rejected += 1
        assert rejected == len(corpus)  # corpus holds known-bad streams

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_seeded_mutations_fail_typed(self, seed):
        import random

        from repro.errors import InputError
        from tests.fuzzing import FIXTURES, mutate_stream

        pristine = (FIXTURES / "seed.gds").read_bytes()
        rng = random.Random(seed)
        mutant = mutate_stream(rng, pristine)
        try:
            read_library(mutant)
        except InputError:
            pass  # typed rejection is the contract
