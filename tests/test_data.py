"""Tests for the synthetic benchmark data substrate."""

import numpy as np
import pytest

from repro.data.benchmarks import (
    BENCHMARKS,
    ICCAD_SPEC,
    benchmark_config,
    generate_benchmark,
    generate_training_set,
)
from repro.data.patterns import (
    AMBIT_MOTIF,
    GAP_REGIMES,
    MOTIFS,
    generate_ambit_motif,
    generate_motif,
    motif_by_name,
)
from repro.data.synth import (
    FABRIC_SPACING,
    anchor_of,
    build_fabric_clip,
    build_testing_layout,
    build_training_clip,
    fabric_rects,
)
from repro.errors import DataError
from repro.geometry.rect import Rect
from repro.layout.clip import ClipLabel, ClipSpec
from repro.topology.strings import canonical_string_key

CORE = Rect(0, 0, 1200, 1200)


class TestMotifs:
    def test_zoo_names(self):
        names = {m.name for m in MOTIFS}
        assert {"tip2tip", "pinch", "bridge", "comb", "ushape"} <= names

    def test_unknown_motif_raises(self):
        with pytest.raises(DataError):
            motif_by_name("nope")

    @pytest.mark.parametrize("motif", [m.name for m in MOTIFS])
    def test_generates_in_window(self, motif):
        rng = np.random.default_rng(0)
        for hotspot in (True, False):
            rects = generate_motif(motif, rng, hotspot, CORE)
            assert rects
            for rect in rects:
                assert CORE.contains_rect(rect)

    @pytest.mark.parametrize("motif", [m.name for m in MOTIFS])
    def test_geometry_disjoint(self, motif):
        rng = np.random.default_rng(1)
        rects = generate_motif(motif, rng, True, CORE)
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_gap_regimes_separated(self):
        hs_low, hs_high = GAP_REGIMES["hotspot"]
        safe_low, safe_high = GAP_REGIMES["safe"]
        assert hs_high < safe_low  # the dead zone keeps labels consistent

    def test_borderline_within_safe(self):
        b_low, b_high = GAP_REGIMES["borderline"]
        safe_low, safe_high = GAP_REGIMES["safe"]
        assert safe_low <= b_low and b_high <= safe_high

    @pytest.mark.parametrize(
        "motif", ["tip2tip", "tip2side", "pinch", "bridge", "corner", "ushape", "jog"]
    )
    def test_family_topology_stable(self, motif):
        """The structural-stability invariant: one string key per family.

        Instances are compared inside their anchored core window, which is
        how the detection pipeline sees them.
        """
        rng = np.random.default_rng(42)
        keys = set()
        for _ in range(8):
            for hotspot in (True, False):
                rects = generate_motif(motif, rng, hotspot, CORE)
                ax, ay = anchor_of(rects, 1200)
                window = Rect(ax, ay, ax + 1200, ay + 1200)
                clipped = [r for r in (x.intersection(window) for x in rects) if r]
                keys.add(canonical_string_key(clipped, window))
        assert len(keys) <= 2, f"{motif} produced {len(keys)} distinct topologies"

    def test_ambit_motif_core_identical_distribution(self):
        rng = np.random.default_rng(7)
        hs_core, hs_ambit = generate_ambit_motif(rng, True, CORE)
        safe_core, safe_ambit = generate_ambit_motif(rng, False, CORE)
        assert len(hs_core) == len(safe_core) == 2
        assert hs_ambit and not safe_ambit


class TestFabric:
    def test_fabric_fills_window(self):
        rng = np.random.default_rng(0)
        window = Rect(0, 0, 20000, 20000)
        rects = fabric_rects(rng, window)
        assert len(rects) > 50
        covered = sum(r.area for r in rects) / window.area
        assert 0.05 < covered < 0.6

    def test_fabric_respects_keep_out(self):
        rng = np.random.default_rng(0)
        window = Rect(0, 0, 20000, 20000)
        hole = Rect(8000, 8000, 12000, 12000)
        rects = fabric_rects(rng, window, keep_out=[hole])
        assert all(not r.overlaps(hole) for r in rects)

    def test_fabric_disjoint(self):
        rng = np.random.default_rng(0)
        rects = fabric_rects(rng, Rect(0, 0, 12000, 12000))
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b), (a, b)

    def test_fabric_spacing_safe(self):
        """Fabric must contain no hotspot-regime gaps (< 76 nm)."""
        rng = np.random.default_rng(3)
        rects = fabric_rects(rng, Rect(0, 0, 16000, 16000))
        from repro.geometry.measure import min_rect_spacing

        spacing = min_rect_spacing(rects)
        assert spacing is None or spacing > GAP_REGIMES["hotspot"][1]


class TestClips:
    def test_training_clip_label(self):
        rng = np.random.default_rng(0)
        clip = build_training_clip(rng, ICCAD_SPEC, "tip2tip", hotspot=True)
        assert clip.label is ClipLabel.HOTSPOT
        assert len(clip.core_rects()) >= 2

    def test_training_clip_core_is_motif_only(self):
        """The anchored core must hold the motif with no fabric mixed in."""
        rng = np.random.default_rng(1)
        clip = build_training_clip(rng, ICCAD_SPEC, "pinch", hotspot=False)
        # pinch has exactly 3 rectangles; the core may clip them but never
        # adds fabric pieces
        assert len(clip.core_rects()) <= 3

    def test_fabric_clip(self):
        rng = np.random.default_rng(2)
        clip = build_fabric_clip(rng, ICCAD_SPEC)
        assert clip.label is ClipLabel.NON_HOTSPOT
        assert clip.core_rects()

    def test_anchor_of_lexicographic(self):
        rects = [Rect(10, 50, 20, 60), Rect(5, 80, 8, 90), Rect(5, 20, 9, 30)]
        assert anchor_of(rects, 1200) == (5, 20)


class TestBenchmarks:
    def test_six_benchmarks(self):
        assert len(BENCHMARKS) == 6
        names = [cfg.name for cfg in BENCHMARKS]
        assert "benchmark1" in names and "blind" in names

    def test_unknown_benchmark(self):
        with pytest.raises(DataError):
            benchmark_config("benchmark9")

    def test_invalid_scale(self):
        with pytest.raises(DataError):
            generate_benchmark("benchmark1", scale=0)

    def test_population_imbalance(self):
        """Table I shape: nonhotspots greatly outnumber hotspots."""
        for cfg in BENCHMARKS:
            assert cfg.train_nonhotspots > cfg.train_hotspots

    def test_generation_deterministic(self):
        a = generate_benchmark("benchmark5", scale=0.4)
        b = generate_benchmark("benchmark5", scale=0.4)
        assert [c.rects for c in a.training] == [c.rects for c in b.training]
        assert a.testing.hotspot_cores() == b.testing.hotspot_cores()

    def test_stats_row(self):
        bench = generate_benchmark("benchmark5", scale=0.4)
        stats = bench.stats()
        assert stats["train_hs"] >= 2
        assert stats["train_nhs"] > stats["train_hs"]
        assert stats["test_hs"] >= 2
        assert stats["area_um2"] > 0

    def test_truth_cores_disjoint(self):
        bench = generate_benchmark("benchmark1", scale=0.4)
        cores = bench.testing.hotspot_cores()
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                # companion cores may overlap their primary, but never
                # coincide
                assert a != b

    def test_training_set_mixes_fabric_clips(self):
        config = benchmark_config("benchmark2")
        clips = generate_training_set(config, scale=0.2)
        assert len(clips.non_hotspots()) > len(clips.hotspots())

    def test_site_windows_inside_layout(self):
        bench = generate_benchmark("benchmark5", scale=0.4)
        for site in bench.testing.sites:
            assert bench.testing.window.contains_rect(site.core)


class TestMultilayerData:
    def test_multilayer_set_deterministic(self):
        from repro.data.multilayer import generate_multilayer_set

        a = generate_multilayer_set(4, 4, seed=77)
        b = generate_multilayer_set(4, 4, seed=77)
        assert [c.layer_rects for c in a] == [c.layer_rects for c in b]

    def test_multilayer_labels(self):
        from repro.data.multilayer import generate_multilayer_set

        clips = generate_multilayer_set(3, 5, seed=1)
        assert sum(c.label is ClipLabel.HOTSPOT for c in clips) == 3
        assert sum(c.label is ClipLabel.NON_HOTSPOT for c in clips) == 5

    def test_dpt_hotspot_has_decomposition_conflicts(self):
        from repro.data.multilayer import build_dpt_clip
        from repro.multilayer.dpt import decompose

        rng = np.random.default_rng(5)
        hot = build_dpt_clip(rng, ICCAD_SPEC, hotspot=True)
        safe = build_dpt_clip(rng, ICCAD_SPEC, hotspot=False)
        hot_conflicts = len(decompose(list(hot.rects), 100).conflicts)
        safe_conflicts = len(decompose(list(safe.rects), 100).conflicts)
        assert hot_conflicts > safe_conflicts

    def test_multilayer_metal2_crossing_is_the_label(self):
        from repro.data.multilayer import METAL1, METAL2, build_multilayer_clip

        rng = np.random.default_rng(9)
        hot = build_multilayer_clip(rng, ICCAD_SPEC, hotspot=True)
        # metal-1 view alone: two wires with a dead-zone gap in both labels
        assert len(hot.layer_clip(METAL1).core_rects()) >= 2
        assert len(hot.rects_on(METAL2)) == 2
