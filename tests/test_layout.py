"""Tests for the layout model: clips, spatial index, layout, serialisation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.transform import Orientation
from repro.layout.clip import Clip, ClipLabel, ClipSet, ClipSpec
from repro.layout.io import (
    clipset_from_json,
    clipset_to_json,
    clipset_to_library,
    layout_to_library,
    library_to_clipset,
    library_to_layout,
)
from repro.layout.layout import Layout
from repro.layout.spatial import RectIndex

SPEC = ClipSpec(core_side=4, clip_side=12)


class TestClipSpec:
    def test_iccad_defaults(self):
        spec = ClipSpec()
        assert spec.core_side == 1200
        assert spec.clip_side == 4800
        assert spec.ambit_margin == 1800

    def test_core_centred(self):
        window = SPEC.clip_at(0, 0)
        assert SPEC.core_of(window) == Rect(4, 4, 8, 8)

    def test_clip_for_core_roundtrip(self):
        core = Rect(100, 200, 104, 204)
        assert SPEC.core_of(SPEC.clip_for_core(core)) == core

    def test_clip_for_wrong_core_size(self):
        with pytest.raises(LayoutError):
            SPEC.clip_for_core(Rect(0, 0, 5, 4))

    def test_odd_margin_rejected(self):
        with pytest.raises(LayoutError):
            ClipSpec(core_side=4, clip_side=11)

    def test_core_bigger_than_clip_rejected(self):
        with pytest.raises(LayoutError):
            ClipSpec(core_side=20, clip_side=12)


class TestClip:
    def make(self, rects, label=ClipLabel.UNKNOWN):
        return Clip.build(SPEC.clip_at(0, 0), SPEC, rects, label)

    def test_build_clips_geometry_to_window(self):
        clip = self.make([Rect(-5, -5, 5, 5)])
        assert clip.rects == (Rect(0, 0, 5, 5),)

    def test_wrong_window_size_rejected(self):
        with pytest.raises(LayoutError):
            Clip.build(Rect(0, 0, 10, 10), SPEC, [])

    def test_core_and_ambit_partition(self):
        clip = self.make([Rect(2, 2, 10, 10)])
        core_area = sum(r.area for r in clip.core_rects())
        ambit_area = sum(r.area for r in clip.ambit_rects())
        assert core_area + ambit_area == 64
        assert core_area == 16  # the core is fully covered

    def test_ambit_pieces_disjoint_from_core(self):
        clip = self.make([Rect(2, 2, 10, 10)])
        core = clip.core
        for piece in clip.ambit_rects():
            assert not piece.overlaps(core)

    def test_density(self):
        clip = self.make([Rect(0, 0, 6, 12)])
        assert clip.clip_density() == pytest.approx(0.5)

    def test_core_density_grid_shape(self):
        clip = self.make([Rect(4, 4, 6, 8)])
        grid = clip.core_density_grid(2)
        assert grid.shape == (2, 2)
        assert grid.sum() > 0

    def test_overlapping_input_resolved(self):
        clip = self.make([Rect(0, 0, 6, 6), Rect(3, 3, 9, 9)])
        for i, a in enumerate(clip.rects):
            for b in clip.rects[i + 1 :]:
                assert not a.overlaps(b)
        assert sum(r.area for r in clip.rects) == 36 + 36 - 9

    def test_shifted_content_moves(self):
        clip = self.make([Rect(5, 5, 7, 7)])
        shifted = clip.shifted(2, 0)
        # content appears shifted +2 in x relative to the (moved) window
        normal = shifted.normalized()
        assert normal.rects == (Rect(7, 5, 9, 7),)

    def test_shift_clips_escaping_geometry(self):
        clip = self.make([Rect(11, 0, 12, 1)])
        shifted = clip.shifted(5, 0)
        assert shifted.rects == ()

    def test_oriented_preserves_area(self):
        clip = self.make([Rect(0, 0, 3, 2), Rect(8, 9, 11, 12)])
        for orientation in Orientation:
            oriented = clip.oriented(orientation)
            assert sum(r.area for r in oriented.rects) == 15

    def test_content_key_position_independent(self):
        a = Clip.build(SPEC.clip_at(0, 0), SPEC, [Rect(1, 1, 3, 3)])
        b = Clip.build(SPEC.clip_at(100, 50), SPEC, [Rect(101, 51, 103, 53)])
        assert a.content_key() == b.content_key()

    def test_with_label(self):
        clip = self.make([Rect(1, 1, 2, 2)])
        assert clip.with_label(ClipLabel.HOTSPOT).label is ClipLabel.HOTSPOT


class TestClipSet:
    def test_split(self):
        cs = ClipSet(SPEC)
        cs.add(Clip.build(SPEC.clip_at(0, 0), SPEC, [Rect(1, 1, 2, 2)], ClipLabel.HOTSPOT))
        cs.add(Clip.build(SPEC.clip_at(0, 0), SPEC, [Rect(1, 1, 2, 2)], ClipLabel.NON_HOTSPOT))
        cs.add(Clip.build(SPEC.clip_at(0, 0), SPEC, [Rect(1, 1, 2, 2)]))
        hs, nhs = cs.split()
        assert len(hs) == 1 and len(nhs) == 1
        assert len(cs) == 3

    def test_mismatched_spec_rejected(self):
        cs = ClipSet(SPEC)
        other = ClipSpec(core_side=2, clip_side=12)
        with pytest.raises(LayoutError):
            cs.add(Clip.build(other.clip_at(0, 0), other, []))


class TestRectIndex:
    def test_query_finds_overlaps(self):
        index = RectIndex([Rect(0, 0, 10, 10), Rect(100, 100, 110, 110)], bucket_size=16)
        found = index.query(Rect(5, 5, 20, 20))
        assert found == [Rect(0, 0, 10, 10)]

    def test_query_touching(self):
        index = RectIndex([Rect(0, 0, 10, 10)], bucket_size=16)
        assert index.query(Rect(10, 0, 20, 10)) == []
        assert index.query_touching(Rect(10, 0, 20, 10)) == [Rect(0, 0, 10, 10)]

    def test_negative_coordinates(self):
        index = RectIndex([Rect(-50, -50, -40, -40)], bucket_size=16)
        assert index.query(Rect(-45, -45, -30, -30)) == [Rect(-50, -50, -40, -40)]

    def test_any_overlap(self):
        index = RectIndex([Rect(0, 0, 4, 4)], bucket_size=8)
        assert index.any_overlap(Rect(2, 2, 6, 6))
        assert not index.any_overlap(Rect(10, 10, 12, 12))

    def test_invalid_bucket_size(self):
        with pytest.raises(LayoutError):
            RectIndex([], bucket_size=0)

    @given(
        st.lists(
            st.tuples(st.integers(-40, 40), st.integers(-40, 40), st.integers(1, 20), st.integers(1, 20)),
            max_size=20,
        ),
        st.tuples(st.integers(-40, 40), st.integers(-40, 40)),
    )
    def test_matches_linear_scan(self, raw, origin):
        rects = [Rect(x, y, x + w, y + h) for x, y, w, h in raw]
        index = RectIndex(rects, bucket_size=13)
        window = Rect(origin[0], origin[1], origin[0] + 25, origin[1] + 25)
        expected = sorted(r for r in rects if r.overlaps(window))
        assert sorted(index.query(window)) == expected


class TestLayout:
    def test_polygon_dissected(self):
        layout = Layout()
        layout.add_polygon(1, Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]))
        assert layout.rect_count(1) == 2
        assert layout.polygon_count(1) == 1

    def test_bbox(self):
        layout = Layout()
        layout.add_rect(1, Rect(0, 0, 5, 5))
        layout.add_rect(2, Rect(50, 50, 60, 60))
        assert layout.bbox(1) == Rect(0, 0, 5, 5)
        assert layout.bbox() == Rect(0, 0, 60, 60)

    def test_unknown_layer_raises(self):
        layout = Layout()
        with pytest.raises(LayoutError):
            layout.index(3)

    def test_index_invalidated_on_add(self):
        layout = Layout()
        layout.add_rect(1, Rect(0, 0, 5, 5))
        assert len(layout.rects_in_window(1, Rect(0, 0, 10, 10))) == 1
        layout.add_rect(1, Rect(6, 6, 8, 8))
        assert len(layout.rects_in_window(1, Rect(0, 0, 10, 10))) == 2

    def test_cut_clip(self):
        layout = Layout()
        layout.add_rect(1, Rect(5, 5, 7, 7))
        clip = layout.cut_clip(SPEC, SPEC.clip_at(0, 0), layer=1)
        assert clip.rects == (Rect(5, 5, 7, 7),)

    def test_cut_clip_at_core(self):
        layout = Layout()
        layout.add_rect(1, Rect(100, 100, 102, 102))
        clip = layout.cut_clip_at_core(SPEC, Rect(100, 100, 104, 104), layer=1)
        assert clip.core == Rect(100, 100, 104, 104)
        assert clip.rects == (Rect(100, 100, 102, 102),)


class TestSerialisation:
    def build_clipset(self):
        cs = ClipSet(SPEC)
        cs.add(
            Clip.build(SPEC.clip_at(0, 0), SPEC, [Rect(1, 1, 3, 3)], ClipLabel.HOTSPOT)
        )
        cs.add(
            Clip.build(
                SPEC.clip_at(20, 20), SPEC, [Rect(22, 21, 25, 28)], ClipLabel.NON_HOTSPOT
            )
        )
        return cs

    def test_json_roundtrip(self):
        cs = self.build_clipset()
        again = clipset_from_json(clipset_to_json(cs))
        assert again.spec == cs.spec
        assert [c.rects for c in again] == [c.rects for c in cs]
        assert [c.label for c in again] == [c.label for c in cs]

    def test_json_malformed_raises(self):
        with pytest.raises(LayoutError):
            clipset_from_json('{"nope": 1}')

    def test_gds_clipset_roundtrip(self):
        cs = self.build_clipset()
        library = clipset_to_library(cs)
        again = library_to_clipset(library, SPEC)
        assert [c.rects for c in again] == [c.rects for c in cs]
        assert [c.label for c in again] == [c.label for c in cs]
        assert [c.window for c in again] == [c.window for c in cs]

    def test_layout_gds_roundtrip(self):
        layout = Layout()
        layout.add_rect(1, Rect(0, 0, 10, 5))
        layout.add_rect(2, Rect(20, 20, 25, 40))
        library = layout_to_library(layout)
        again = library_to_layout(library)
        assert again.layer_numbers() == [1, 2]
        assert again.bbox() == layout.bbox()
        assert again.rect_count() == 2
