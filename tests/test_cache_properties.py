"""Property tests for the cache: keys, Theorem-1 coupling, integrity.

Three families of invariants:

- **Key algebra** — :func:`clip_content_key` must be invariant under
  translation (always) and under the D8 group exactly when asked for
  canonical keys; raw keys must distinguish orientations of asymmetric
  geometry, because a raw-keyed cache may serve any configuration.
- **Theorem 1 coupling** — D8 key sharing is sound precisely when the
  pipeline is orientation-blind: canonically-keyed clips that collide
  share a topological classification (``canonical_string_key``) and
  extract identical features under ``canonical_orientation``; with a
  density grid the extraction sees orientation and
  :func:`cache_canonical` correctly refuses.
- **Disk integrity** — a corrupted, truncated or forged blob is
  detected, counted, and treated as a miss; it is *never* decoded into
  a served value.  Round-tripped values are bit-identical.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import HotspotCache, cache_canonical, clip_content_key
from repro.cache.keys import feature_fingerprint
from repro.features.vector import FeatureConfig, FeatureExtractor
from repro.geometry.rect import Rect
from repro.geometry.transform import ALL_ORIENTATIONS
from repro.layout.clip import Clip, ClipSpec
from repro.topology.strings import canonical_string_key

SPEC = ClipSpec(core_side=400, clip_side=1200)

offsets = st.integers(-500_000, 500_000)


@st.composite
def clips(draw):
    """A clip at a random position with random disjoint-ish geometry."""
    count = draw(st.integers(1, 6))
    rects = []
    for _ in range(count):
        x0 = draw(st.integers(0, SPEC.clip_side - 20))
        y0 = draw(st.integers(0, SPEC.clip_side - 20))
        w = draw(st.integers(10, 400))
        h = draw(st.integers(10, 400))
        rects.append(Rect(x0, y0, min(x0 + w, SPEC.clip_side), min(y0 + h, SPEC.clip_side)))
    ox, oy = draw(offsets), draw(offsets)
    window = Rect(ox, oy, ox + SPEC.clip_side, oy + SPEC.clip_side)
    return Clip.build(window, SPEC, [r.translated(ox, oy) for r in rects])


class TestKeyAlgebra:
    @given(clips(), offsets, offsets, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_translation_invariance(self, clip, dx, dy, canonical):
        moved = Clip.build(
            clip.window.translated(dx, dy),
            clip.spec,
            [r.translated(dx, dy) for r in clip.rects],
        )
        assert clip_content_key(clip, canonical=canonical) == clip_content_key(
            moved, canonical=canonical
        )

    @given(clips())
    @settings(max_examples=40, deadline=None)
    def test_canonical_keys_identify_all_eight_orientations(self, clip):
        keys = {
            clip_content_key(clip.oriented(o), canonical=True)
            for o in ALL_ORIENTATIONS
        }
        assert len(keys) == 1

    def test_raw_keys_distinguish_orientations(self):
        # An L-shape: no nontrivial D8 symmetry, so each orientation has
        # its own raw key (a raw-keyed cache must never cross-serve them).
        rects = [Rect(0, 0, 100, 500), Rect(100, 0, 400, 100)]
        window = Rect(0, 0, SPEC.clip_side, SPEC.clip_side)
        clip = Clip.build(window, SPEC, rects)
        keys = {
            clip_content_key(clip.oriented(o), canonical=False)
            for o in ALL_ORIENTATIONS
        }
        assert len(keys) == 8

    @given(clips())
    @settings(max_examples=40, deadline=None)
    def test_keys_change_when_geometry_changes(self, clip):
        grown = Clip.build(
            clip.window,
            clip.spec,
            list(clip.rects)
            + [Rect(clip.window.x0 + 1, clip.window.y0 + 1, clip.window.x0 + 9, clip.window.y0 + 7)],
        )
        if grown.rects == clip.rects:  # the new rect merged into cover
            return
        assert clip_content_key(clip, canonical=False) != clip_content_key(
            grown, canonical=False
        )

    def test_key_depends_on_spec(self):
        # Same geometry under a different core/ambit split must not
        # collide: "core"/"context" extraction reads the spec.
        other_spec = ClipSpec(core_side=600, clip_side=1200)
        window = Rect(0, 0, 1200, 1200)
        rects = [Rect(100, 100, 300, 900)]
        a = Clip.build(window, SPEC, rects)
        b = Clip.build(window, other_spec, rects)
        assert clip_content_key(a) != clip_content_key(b)


class TestTheoremOneCoupling:
    """D8 sharing is sound exactly when classification is D8-blind."""

    @given(clips())
    @settings(max_examples=25, deadline=None)
    def test_canonical_collision_implies_same_topology_class(self, clip):
        # Orientations collide under canonical keys, and the topological
        # classifier (canonical string key, Theorem 1) agrees they are
        # one pattern — so serving one's features for the other is sound.
        base_key = clip_content_key(clip, canonical=True)
        base_topo = canonical_string_key(list(clip.rects), clip.window)
        for orientation in ALL_ORIENTATIONS:
            oriented = clip.oriented(orientation)
            assert clip_content_key(oriented, canonical=True) == base_key
            assert (
                canonical_string_key(list(oriented.rects), oriented.window)
                == base_topo
            )

    @given(clips())
    @settings(max_examples=15, deadline=None)
    def test_orientation_blind_extraction_matches_key_sharing(self, clip):
        config = FeatureConfig(region="clip", canonical_orientation=True)
        assert cache_canonical(config)
        extractor = FeatureExtractor(config)
        reference = extractor.extract(clip)
        for orientation in ALL_ORIENTATIONS:
            features = extractor.extract(clip.oriented(orientation))
            assert features.rules == reference.rules
            assert features.nontopo == reference.nontopo

    def test_density_grid_breaks_soundness_and_predicate_refuses(self):
        config = FeatureConfig(region="clip", include_density_grid=True)
        assert not cache_canonical(config)
        # And rightly so: the grid genuinely differs between orientations
        # that share a canonical key.
        rects = [Rect(0, 0, 100, 500), Rect(100, 0, 400, 100)]
        window = Rect(0, 0, SPEC.clip_side, SPEC.clip_side)
        clip = Clip.build(window, SPEC, rects)
        extractor = FeatureExtractor(config)
        grids = {
            extractor.extract(clip.oriented(o)).grid.tobytes()
            for o in ALL_ORIENTATIONS
        }
        assert len(grids) > 1

    def test_raw_keys_sound_for_every_config(self):
        # The predicate refusing D8 never refuses raw keys: identical raw
        # geometry extracts identically even with the grid enabled.
        config = FeatureConfig(region="clip", include_density_grid=True)
        extractor = FeatureExtractor(config)
        rects = [Rect(50, 50, 250, 450), Rect(300, 700, 900, 760)]
        window = Rect(0, 0, SPEC.clip_side, SPEC.clip_side)
        a = Clip.build(window, SPEC, rects)
        b = Clip.build(
            window.translated(2400, -1200),
            SPEC,
            [r.translated(2400, -1200) for r in rects],
        )
        assert clip_content_key(a, canonical=False) == clip_content_key(
            b, canonical=False
        )
        fa, fb = extractor.extract(a), extractor.extract(b)
        assert fa.rules == fb.rules and fa.nontopo == fb.nontopo
        assert np.array_equal(fa.grid, fb.grid)


# ----------------------------------------------------------------------
# disk blob integrity
# ----------------------------------------------------------------------
def _some_features(grid: bool = False):
    config = FeatureConfig(region="clip", include_density_grid=grid)
    window = Rect(0, 0, SPEC.clip_side, SPEC.clip_side)
    clip = Clip.build(window, SPEC, [Rect(10, 10, 200, 600), Rect(400, 300, 950, 420)])
    return FeatureExtractor(config).extract(clip), feature_fingerprint(config)


class TestDiskIntegrity:
    def _written_blob(self, tmp_path, grid: bool = False):
        cache = HotspotCache(directory=tmp_path)
        features, fingerprint = _some_features(grid)
        cache.put_features(fingerprint, "k" * 64, features)
        blobs = list(tmp_path.rglob("*.blob"))
        assert len(blobs) == 1
        return cache, features, fingerprint, blobs[0]

    def test_roundtrip_is_bit_identical(self, tmp_path):
        cache, features, fingerprint, _ = self._written_blob(tmp_path, grid=True)
        cache.clear_memory()
        loaded = cache.get_features(fingerprint, "k" * 64)
        assert loaded.rules == features.rules
        assert loaded.nontopo == features.nontopo
        assert loaded.grid.tobytes() == features.grid.tobytes()
        assert cache.stats.disk_hits == 1

    @given(offset=st.integers(0, 10_000), flip=st.integers(1, 255))
    @settings(max_examples=40, deadline=None)
    def test_flipped_byte_never_served(self, tmp_path_factory, offset, flip):
        tmp_path = tmp_path_factory.mktemp("flip")
        cache, _, fingerprint, blob = self._written_blob(tmp_path)
        raw = bytearray(blob.read_bytes())
        offset %= len(raw)
        raw[offset] ^= flip
        blob.write_bytes(bytes(raw))
        cache.clear_memory()
        assert cache.get_features(fingerprint, "k" * 64) is None
        assert cache.stats.disk_corrupt == 1
        assert cache.stats.feature_misses == 1

    @given(keep=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_truncated_blob_never_served(self, tmp_path_factory, keep):
        tmp_path = tmp_path_factory.mktemp("trunc")
        cache, _, fingerprint, blob = self._written_blob(tmp_path)
        raw = blob.read_bytes()
        blob.write_bytes(raw[: keep % len(raw)])
        cache.clear_memory()
        assert cache.get_features(fingerprint, "k" * 64) is None
        assert cache.stats.disk_corrupt == 1

    def test_forged_digest_never_served(self, tmp_path):
        # Even a well-formed npz with a matching *wrong-content* digest
        # for the truncated payload must not decode into served data if
        # the payload is not a valid archive.
        cache, _, fingerprint, blob = self._written_blob(tmp_path)
        from hashlib import sha256

        from repro.cache import BLOB_MAGIC

        payload = b"not an npz archive at all"
        digest = sha256(payload).hexdigest().encode("ascii")
        blob.write_bytes(BLOB_MAGIC + digest + b"\n" + payload)
        cache.clear_memory()
        assert cache.get_features(fingerprint, "k" * 64) is None

    def test_corrupt_margin_blob_recovers_by_rewrite(self, tmp_path):
        cache = HotspotCache(directory=tmp_path)
        row = np.array([0.25, -1e9, 3.5], dtype=np.float64)
        cache.put_margins("f" * 64, "a" * 64, row)
        blob = next(tmp_path.rglob("*.blob"))
        blob.write_bytes(b"garbage")
        cache.clear_memory()
        assert cache.get_margins("f" * 64, "a" * 64) is None
        # The caller recomputes and overwrites; the entry is healthy again.
        cache.put_margins("f" * 64, "a" * 64, row)
        cache.clear_memory()
        assert np.array_equal(cache.get_margins("f" * 64, "a" * 64), row)

    @given(
        values=st.lists(
            st.floats(allow_nan=False, allow_infinity=True, width=64),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_margin_rows_roundtrip_exactly(self, tmp_path_factory, values):
        tmp_path = tmp_path_factory.mktemp("rows")
        cache = HotspotCache(directory=tmp_path)
        row = np.array(values, dtype=np.float64)
        cache.put_margins("f" * 64, "b" * 64, row)
        cache.clear_memory()
        loaded = cache.get_margins("f" * 64, "b" * 64)
        assert loaded.dtype == np.float64
        assert loaded.tobytes() == row.tobytes()


class TestMemoryTier:
    def test_lru_eviction_is_counted_and_bounded(self):
        cache = HotspotCache(max_entries=4)
        for i in range(10):
            cache.put_margins("f" * 64, f"key{i}", np.array([float(i)]))
        assert len(cache) == 4
        assert cache.stats.evictions == 6
        # The newest entries survived, the oldest were evicted.
        assert cache.get_margins("f" * 64, "key9") is not None
        assert cache.get_margins("f" * 64, "key0") is None

    def test_get_returns_a_copy_of_margins(self):
        cache = HotspotCache()
        cache.put_margins("f" * 64, "c" * 64, np.array([1.0, 2.0]))
        first = cache.get_margins("f" * 64, "c" * 64)
        first[0] = 99.0
        again = cache.get_margins("f" * 64, "c" * 64)
        assert again[0] == 1.0

    def test_unwritable_directory_degrades_to_memory(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should go")
        cache = HotspotCache(directory=target)
        cache.put_margins("f" * 64, "d" * 64, np.array([4.0]))
        # Write failed silently; memory tier still serves.
        assert not cache._disk_ok
        assert cache.get_margins("f" * 64, "d" * 64) is not None


# ----------------------------------------------------------------------
# replica placement on the hash ring
# ----------------------------------------------------------------------
node_urls = st.lists(
    st.integers(8000, 9999).map(lambda p: f"http://10.0.0.{p % 250 + 1}:{p}"),
    min_size=2,
    max_size=8,
    unique=True,
)
cache_keys = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=64
)


class TestReplicaPlacement:
    """Exact consistent-hash properties the RF=2 cache tier leans on."""

    @given(urls=node_urls, key=cache_keys, rf=st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_replica_sets_are_distinct_nodes(self, urls, key, rf):
        from repro.fleet.router import HashRing

        ring = HashRing(urls)
        replicas = ring.replicas_for(key, rf)
        # Distinct nodes, never more than the ring holds, and always a
        # prefix of the deterministic fallback walk starting at the
        # primary — so every reader agrees on replica order.
        assert len(replicas) == len(set(replicas)) == min(rf, len(urls))
        assert replicas == ring.nodes_for(key)[: len(replicas)]
        assert replicas[0] == ring.node_for(key)

    @given(urls=node_urls, keys=st.lists(cache_keys, min_size=1, max_size=40, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_removing_a_node_only_remaps_its_own_keys(self, urls, keys):
        from repro.fleet.router import HashRing

        ring = HashRing(urls)
        victim = ring.node_for(keys[0])
        survivor_ring = HashRing([u for u in urls if u != victim])
        for key in keys:
            before = ring.replicas_for(key, 2)
            after = survivor_ring.replicas_for(key, 2)
            if victim not in before:
                # Keys whose replica set never touched the victim do not
                # move at all — the bounded-churn half of consistency.
                assert after == before
            else:
                # Keys that did lose a replica keep every survivor in
                # place; only the victim's slot is re-assigned.
                assert [n for n in before if n != victim] == [
                    n for n in after if n in before
                ]

    @given(urls=node_urls, keys=st.lists(cache_keys, min_size=1, max_size=40, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_added_node_only_steals_keys_for_itself(self, urls, keys):
        from repro.fleet.router import HashRing

        joined = "http://10.0.1.1:7777"
        before = HashRing(urls)
        after = HashRing(urls + [joined])
        moved = 0
        for key in keys:
            old = before.replicas_for(key, 2)
            new = after.replicas_for(key, 2)
            if new == old:
                continue
            moved += 1
            # Any key that moved, moved *onto the joiner*: a changed
            # replica set always includes the new node, and the nodes it
            # displaced keep their relative order.
            assert joined in new
            survivors = [n for n in new if n != joined]
            assert survivors == [n for n in old if n in survivors]
        assert moved <= len(keys)
