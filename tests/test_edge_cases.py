"""Edge-case and error-path tests across modules."""

import pytest

from repro.errors import GdsiiError, LayoutError, TopologyError
from repro.gdsii.library import GdsBoundary, GdsLibrary
from repro.gdsii.reader import read_library
from repro.gdsii.records import DataType, RecordType, encode_record
from repro.geometry.point import ORIGIN, Point
from repro.geometry.rect import Rect


def stream(*records: bytes) -> bytes:
    return b"".join(records)


HEADER = (
    encode_record(RecordType.HEADER, DataType.INT2, [600])
    + encode_record(RecordType.BGNLIB, DataType.INT2, [0] * 12)
    + encode_record(RecordType.LIBNAME, DataType.ASCII, "L")
    + encode_record(RecordType.UNITS, DataType.REAL8, [1e-3, 1e-9])
)
ENDLIB = encode_record(RecordType.ENDLIB, DataType.NO_DATA, None)


class TestPoint:
    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)
        assert -Point(1, -2) == Point(-1, 2)

    def test_distances(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7
        assert Point(0, 0).chebyshev_distance(Point(3, 4)) == 4

    def test_ordering_lexicographic(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_iteration_and_origin(self):
        assert tuple(Point(5, 7)) == (5, 7)
        assert ORIGIN == Point(0, 0)


class TestReaderErrorPaths:
    def test_unclosed_boundary_loop(self):
        body = (
            encode_record(RecordType.BGNSTR, DataType.INT2, [0] * 12)
            + encode_record(RecordType.STRNAME, DataType.ASCII, "S")
            + encode_record(RecordType.BOUNDARY, DataType.NO_DATA, None)
            + encode_record(RecordType.LAYER, DataType.INT2, [1])
            + encode_record(RecordType.DATATYPE, DataType.INT2, [0])
            + encode_record(
                RecordType.XY, DataType.INT4, [0, 0, 10, 0, 10, 10, 0, 10]
            )  # not closed
            + encode_record(RecordType.ENDEL, DataType.NO_DATA, None)
            + encode_record(RecordType.ENDSTR, DataType.NO_DATA, None)
        )
        with pytest.raises(GdsiiError):
            read_library(stream(HEADER, body, ENDLIB))

    def test_sref_with_two_points(self):
        body = (
            encode_record(RecordType.BGNSTR, DataType.INT2, [0] * 12)
            + encode_record(RecordType.STRNAME, DataType.ASCII, "S")
            + encode_record(RecordType.SREF, DataType.NO_DATA, None)
            + encode_record(RecordType.SNAME, DataType.ASCII, "X")
            + encode_record(RecordType.XY, DataType.INT4, [0, 0, 5, 5])
            + encode_record(RecordType.ENDEL, DataType.NO_DATA, None)
            + encode_record(RecordType.ENDSTR, DataType.NO_DATA, None)
        )
        with pytest.raises(GdsiiError):
            read_library(stream(HEADER, body, ENDLIB))

    def test_units_with_one_real(self):
        bad_header = (
            encode_record(RecordType.HEADER, DataType.INT2, [600])
            + encode_record(RecordType.BGNLIB, DataType.INT2, [0] * 12)
            + encode_record(RecordType.LIBNAME, DataType.ASCII, "L")
            + encode_record(RecordType.UNITS, DataType.REAL8, [1e-3])
        )
        with pytest.raises(GdsiiError):
            read_library(stream(bad_header, ENDLIB))

    def test_text_elements_skipped(self):
        body = (
            encode_record(RecordType.BGNSTR, DataType.INT2, [0] * 12)
            + encode_record(RecordType.STRNAME, DataType.ASCII, "S")
            + encode_record(RecordType.TEXT, DataType.NO_DATA, None)
            + encode_record(RecordType.LAYER, DataType.INT2, [1])
            + encode_record(RecordType.TEXTTYPE, DataType.INT2, [0])
            + encode_record(RecordType.STRING, DataType.ASCII, "label")
            + encode_record(RecordType.ENDEL, DataType.NO_DATA, None)
            + encode_record(RecordType.ENDSTR, DataType.NO_DATA, None)
        )
        library = read_library(stream(HEADER, body, ENDLIB))
        assert library.get("S").elements == []

    def test_odd_xy_coordinate_count(self):
        body = (
            encode_record(RecordType.BGNSTR, DataType.INT2, [0] * 12)
            + encode_record(RecordType.STRNAME, DataType.ASCII, "S")
            + encode_record(RecordType.BOUNDARY, DataType.NO_DATA, None)
            + encode_record(RecordType.LAYER, DataType.INT2, [1])
            + encode_record(RecordType.DATATYPE, DataType.INT2, [0])
            + encode_record(RecordType.XY, DataType.INT4, [0, 0, 10])
            + encode_record(RecordType.ENDEL, DataType.NO_DATA, None)
        )
        with pytest.raises(GdsiiError):
            read_library(stream(HEADER, body, ENDLIB))


class TestClipsetIoErrors:
    def test_unlabelled_structure_rejected(self):
        from repro.layout.clip import ClipSpec
        from repro.layout.io import library_to_clipset

        library = GdsLibrary()
        bad = library.new_structure("WEIRD_000001")
        bad.add(GdsBoundary.from_rect(1, 0, Rect(0, 0, 10, 10)))
        with pytest.raises(LayoutError):
            library_to_clipset(library, ClipSpec())

    def test_missing_window_marker_rejected(self):
        from repro.layout.clip import ClipSpec
        from repro.layout.io import library_to_clipset

        library = GdsLibrary()
        clip_struct = library.new_structure("HS_000000")
        clip_struct.add(GdsBoundary.from_rect(1, 0, Rect(0, 0, 10, 10)))
        with pytest.raises(LayoutError):
            library_to_clipset(library, ClipSpec())


class TestMatchEdgeCases:
    def test_multiset_prefilter(self):
        """Different slice multisets cannot match (fast reject)."""
        from repro.topology.match import strings_match
        from repro.topology.strings import directional_strings

        window = Rect(0, 0, 10, 10)
        a = directional_strings([Rect(0, 0, 10, 3)], window)
        b = directional_strings([Rect(0, 3, 10, 7)], window)
        assert not strings_match(a, b)

    def test_window_scan_region_default(self):
        from repro.baselines.window_scan import scan_clips
        from repro.layout.clip import ClipSpec
        from repro.layout.layout import Layout

        layout = Layout()
        assert scan_clips(layout, ClipSpec()) == []  # empty layout, no region

    def test_empty_string_group(self):
        from repro.topology.cluster import TopologicalClassifier

        assert TopologicalClassifier().classify([]) == []


class TestDetectorThresholdOverride:
    def test_config_at_threshold(self):
        from repro.core.config import DetectorConfig

        base = DetectorConfig.ours()
        shifted = base.at_threshold(0.42)
        assert shifted.decision_threshold == pytest.approx(0.42)
        assert shifted.use_feedback == base.use_feedback

    def test_spec_propagates(self):
        from repro.core.config import DetectorConfig, RemovalConfig
        from repro.errors import ConfigError
        from repro.layout.clip import ClipSpec

        # A small core demands a matching reframe separation...
        with pytest.raises(ConfigError):
            DetectorConfig(spec=ClipSpec(core_side=600, clip_side=2400))
        # ...and is accepted when the removal parameters scale with it.
        config = DetectorConfig(
            spec=ClipSpec(core_side=600, clip_side=2400),
            removal=RemovalConfig(reframe_separation=550),
        )
        assert config.spec.ambit_margin == 900
