"""Tests for the Section IV extensions: multilayer and double patterning."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.data.multilayer import (
    build_dpt_clip,
    build_multilayer_clip,
    generate_dpt_set,
    generate_multilayer_set,
)
from repro.errors import FeatureError, LayoutError, NotFittedError, SvmError
from repro.geometry.rect import Rect
from repro.layout.clip import Clip, ClipLabel, ClipSpec
from repro.mtcg.rules import FeatureType
from repro.multilayer.detector import DptDetector, MultiLayerDetector
from repro.multilayer.dpt import DptFeatureExtractor, decompose
from repro.multilayer.features import (
    OVERLAP_TYPES,
    MultiLayerClip,
    MultiLayerFeatureExtractor,
)

SPEC = ClipSpec(core_side=1200, clip_side=4800)


class TestMultiLayerClip:
    def make(self):
        window = SPEC.clip_at(0, 0)
        return MultiLayerClip.build(
            window,
            SPEC,
            {
                1: [Rect(2000, 2000, 3000, 2100)],
                2: [Rect(2400, 1500, 2500, 2600)],
            },
            ClipLabel.HOTSPOT,
        )

    def test_layers_sorted(self):
        clip = self.make()
        assert clip.layers == [1, 2]

    def test_layer_clip_view(self):
        clip = self.make()
        view = clip.layer_clip(2)
        assert view.rects == (Rect(2400, 1500, 2500, 2600),)
        assert view.label is ClipLabel.HOTSPOT

    def test_unknown_layer_raises(self):
        with pytest.raises(LayoutError):
            self.make().rects_on(3)

    def test_overlap_rects(self):
        clip = self.make()
        overlaps = clip.overlap_rects(1, 2)
        assert overlaps == [Rect(2400, 2000, 2500, 2100)]

    def test_empty_layers_rejected(self):
        with pytest.raises(LayoutError):
            MultiLayerClip.build(SPEC.clip_at(0, 0), SPEC, {})


class TestMultiLayerFeatures:
    def test_extraction_blocks(self):
        rng = np.random.default_rng(0)
        clip = build_multilayer_clip(rng, SPEC, hotspot=True)
        extractor = MultiLayerFeatureExtractor()
        blocks = extractor.extract(clip)
        assert set(blocks) == {1, 2, (1, 2)}

    def test_overlap_block_types_restricted(self):
        rng = np.random.default_rng(1)
        clip = build_multilayer_clip(rng, SPEC, hotspot=True)
        extractor = MultiLayerFeatureExtractor()
        blocks = extractor.extract(clip)
        for rule in blocks[(1, 2)].rules:
            assert rule.feature_type in OVERLAP_TYPES

    def test_matrix_alignment(self):
        clips = generate_multilayer_set(3, 3, SPEC, seed=2)
        extractor = MultiLayerFeatureExtractor()
        matrix, schema = extractor.build_matrix(clips)
        assert matrix.shape[0] == 6
        probe = extractor.vectorize_clip(clips[0], schema)
        assert np.allclose(matrix[0], probe)

    def test_mismatched_stacks_rejected(self):
        window = SPEC.clip_at(0, 0)
        a = MultiLayerClip.build(window, SPEC, {1: [Rect(1, 1, 2, 2)]})
        b = MultiLayerClip.build(window, SPEC, {2: [Rect(1, 1, 2, 2)]})
        with pytest.raises(FeatureError):
            MultiLayerFeatureExtractor().build_matrix([a, b])

    def test_hotspot_and_safe_overlaps_differ(self):
        """The Fig. 13 signal: the crossing creates overlap geometry."""
        rng = np.random.default_rng(3)
        hot = build_multilayer_clip(rng, SPEC, hotspot=True)
        safe = build_multilayer_clip(rng, SPEC, hotspot=False)
        hot_core_overlaps = [
            o for o in hot.overlap_rects(1, 2) if o.overlaps(hot.core)
        ]
        assert hot_core_overlaps  # the crossing overlaps metal 1 wires


class TestMultiLayerDetector:
    def test_separates_cross_layer_hotspots(self):
        clips = generate_multilayer_set(14, 20, SPEC)
        train = clips[:10] + clips[14:28]
        test = clips[10:14] + clips[28:]
        detector = MultiLayerDetector(DetectorConfig.ours())
        detector.fit(train)
        predictions = detector.predict(test)
        truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])
        assert (predictions == truth).mean() >= 0.85

    def test_single_layer_view_cannot_separate(self):
        """Metal-1-only features see identical hotspot/safe cores."""
        from repro.core.training import train_multi_kernel
        from repro.layout.clip import ClipSet

        clips = generate_multilayer_set(14, 14, SPEC)
        single_layer = ClipSet(SPEC)
        for clip in clips:
            single_layer.add(clip.layer_clip(1))
        model = train_multi_kernel(single_layer, DetectorConfig.ours())
        flags = model.predict(single_layer.clips)
        truth = np.array([c.label is ClipLabel.HOTSPOT for c in single_layer])
        accuracy = (flags == truth).mean()
        assert accuracy < 0.95  # cannot fully separate without metal 2

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MultiLayerDetector().margins([])

    def test_needs_both_classes(self):
        clips = generate_multilayer_set(3, 0, SPEC)
        with pytest.raises(SvmError):
            MultiLayerDetector().fit(clips)


class TestDecompose:
    def test_alternating_wires(self):
        wires = [Rect(i * 15, 0, i * 15 + 10, 100) for i in range(4)]
        result = decompose(wires, min_same_mask_spacing=10)
        assert result.is_clean
        assert {len(result.mask1), len(result.mask2)} == {2}

    def test_far_wires_one_mask(self):
        wires = [Rect(0, 0, 10, 100), Rect(500, 0, 510, 100)]
        result = decompose(wires, min_same_mask_spacing=20)
        assert result.is_clean
        assert len(result.mask1) == 2

    def test_odd_cycle_conflict(self):
        # three mutually-close wires cannot be 2-coloured
        a = Rect(0, 0, 10, 100)
        b = Rect(15, 0, 25, 100)
        c = Rect(0, 105, 25, 115)  # close to both a and b vertically
        result = decompose([a, b, c], min_same_mask_spacing=10)
        assert not result.is_clean

    def test_empty(self):
        result = decompose([], 10)
        assert result.is_clean and not result.mask1 and not result.mask2


class TestDptDetector:
    def test_three_block_vector(self):
        clips = generate_dpt_set(2, 2, SPEC, seed=9)
        extractor = DptFeatureExtractor(min_same_mask_spacing=100)
        matrix, schema = extractor.build_matrix(clips)
        assert matrix.shape[0] == 4
        probe = extractor.vectorize_clip(clips[0], schema)
        assert np.allclose(matrix[0], probe)

    def test_invalid_spacing(self):
        with pytest.raises(FeatureError):
            DptFeatureExtractor(min_same_mask_spacing=0)

    def test_separates_dpt_hotspots(self):
        clips = generate_dpt_set(12, 16, SPEC)
        train = clips[:9] + clips[12:24]
        test = clips[9:12] + clips[24:]
        detector = DptDetector(DetectorConfig.ours())
        detector.fit(train)
        predictions = detector.predict(test)
        truth = np.array([c.label is ClipLabel.HOTSPOT for c in test])
        assert (predictions == truth).mean() >= 0.85

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DptDetector().margins([])


class TestMultiLayerLayoutScan:
    def test_detect_on_layout(self):
        """Layout-level multilayer detection finds the planted crossing."""
        import numpy as np

        from repro.data.multilayer import METAL1, METAL2, build_multilayer_clip
        from repro.data.synth import fabric_rects
        from repro.layout.layout import Layout

        rng = np.random.default_rng(11)
        clips = generate_multilayer_set(12, 16, SPEC)
        detector = MultiLayerDetector(DetectorConfig.ours())
        detector.fit(clips)

        # Build a two-layer layout containing one hotspot instance's
        # geometry placed at an offset, plus fabric on metal 1.
        sample = build_multilayer_clip(np.random.default_rng(123), SPEC, hotspot=True)
        layout = Layout()
        dx, dy = 20_000, 20_000
        for rect in sample.rects_on(METAL1):
            layout.add_rect(METAL1, rect.translated(dx, dy))
        for rect in sample.rects_on(METAL2):
            layout.add_rect(METAL2, rect.translated(dx, dy))
        flagged = detector.detect(layout, layers=(METAL1, METAL2))
        target_core = sample.core.translated(dx, dy)
        assert any(clip.core.overlaps(target_core) for clip in flagged)
