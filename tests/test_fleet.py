"""Fleet differential + chaos harness: N nodes must equal 1 node, bit for bit.

The fleet's core invariant is that distributing a scan changes nothing
observable: the hotspot report set, per-clip margins and extraction
funnel counts of a 3-worker fleet scan are identical to a single-node
thread-backend scan — including when a worker dies mid-lease, when the
coordinator itself is SIGKILLed and resumed from its journal, and when
the shared remote cache tier serves corrupt bytes (treated as a miss,
never decoded).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cache import HotspotCache, MemoryCacheStore, open_blob, wrap_blob
from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.persist import save_detector
from repro.errors import FleetError
from repro.fleet import (
    CacheServer,
    FleetClient,
    FleetCoordinator,
    FleetFrontend,
    FleetHTTPServer,
    FleetOptions,
    FleetWorker,
    HashRing,
    MemberTable,
    RemoteCacheStore,
    RoundRobin,
)
from repro.fleet.protocol import BLOB_TYPE, JSON_TYPE, wait_until
from repro.layout.io import save_layout_gds
from repro.resilience import faults
from repro.work.shard import encode_shard_record, evaluate_shard


@pytest.fixture(scope="module")
def fitted(small_benchmark):
    detector = HotspotDetector(DetectorConfig.ours())
    detector.fit(small_benchmark.training)
    return detector


@pytest.fixture()
def detached(fitted):
    fitted.attach_cache(None)
    yield fitted
    fitted.attach_cache(None)


def signature(detector, report):
    """Everything a scan observably produced, in comparable form."""
    cores = tuple(
        (clip.core.x0, clip.core.y0, clip.core.x1, clip.core.y1)
        for clip in report.reports
    )
    extraction = report.extraction
    funnel = (
        extraction.anchor_count,
        extraction.rejected_density,
        extraction.rejected_count,
        extraction.rejected_boundary,
        len(extraction.clips),
    )
    margins = detector.margins(extraction.clips)
    return cores, funnel, margins


def assert_identical(left, right):
    assert left[0] == right[0]  # hotspot report set
    assert left[1] == right[1]  # extraction funnel counts
    assert np.array_equal(left[2], right[2])  # margins, bit-identical


def run_fleet(detector, layout, worker_count, options=None, layer=1):
    """One in-process fleet scan: coordinator + N worker threads."""
    coordinator = FleetCoordinator(
        detector, layout, layer=layer, options=options or FleetOptions()
    )
    with coordinator:
        workers = [
            FleetWorker(coordinator.url, detector, layout, f"worker-{i}")
            for i in range(worker_count)
        ]
        threads = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        assert coordinator.wait(timeout=300), coordinator.status()
        for thread in threads:
            thread.join(timeout=30)
        scan = coordinator.result()
    return coordinator, workers, scan


# ----------------------------------------------------------------------
# the invariant: a 3-worker fleet equals a single node, bit for bit
# ----------------------------------------------------------------------
class TestFleetDifferential:
    def test_three_worker_fleet_bit_identical(self, detached, small_benchmark):
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        coordinator, workers, scan = run_fleet(detached, layout, worker_count=3)
        fleet = signature(detached, detached.detect(layout, scan=scan))

        assert_identical(baseline, fleet)
        status = coordinator.status()
        assert status["completed"] == status["shards"]
        assert status["pushes_accepted"] == status["shards"]
        assert status["pushes_rejected"] == 0
        # Every worker leased at least once against a non-trivial layout.
        assert status["leases_granted"] >= status["shards"]
        assert sum(w.shards_done for w in workers) == status["shards"]

    def test_worker_death_mid_lease_reassigned_exactly_once(
        self, detached, small_benchmark
    ):
        """A leased-then-silent worker's shard is re-leased exactly once.

        The "dead" worker is a raw client that takes one lease and never
        heartbeats — exactly what the coordinator sees when a worker is
        SIGKILLed mid-shard.  The reaper must return that one shard to
        the queue once, a live worker must finish it, and the merged
        output must still be bit-identical.
        """
        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        options = FleetOptions(lease_ttl_s=0.75)
        coordinator = FleetCoordinator(detached, layout, options=options)
        with coordinator:
            granted = FleetClient(coordinator.url).post_json(
                "/fleet/v1/lease",
                {"worker": "stuck", "fingerprint": coordinator.fingerprint},
            )[1]
            assert granted["status"] == "lease"
            stuck_shard = int(granted["shard"])

            worker = FleetWorker(coordinator.url, detached, layout, "alive")
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            assert coordinator.wait(timeout=300), coordinator.status()
            thread.join(timeout=30)
            scan = coordinator.result()

        assert coordinator.reassignments == {stuck_shard: 1}
        assert coordinator.leases_expired == 1
        assert coordinator.pushes_accepted == len(coordinator.shards)
        assert_identical(
            baseline, signature(detached, detached.detect(layout, scan=scan))
        )


# ----------------------------------------------------------------------
# fleet observability: traced scans, status plane, federated metrics
# ----------------------------------------------------------------------
class TestFleetObservability:
    def test_traced_fleet_scan_ships_spans_and_stays_bit_identical(
        self, detached, small_benchmark
    ):
        """options.trace makes workers record + ship spans back; merging
        them with the coordinator's own yields one multi-row Chrome trace
        sharing the scan's root request id — without changing output."""
        from repro import obs

        layout = small_benchmark.testing.layout
        baseline = signature(detached, detached.detect(layout))

        options = FleetOptions(trace=True, request_id="rid-fleet-test")
        # No process tracer installed: the (single) worker thread owns
        # one, exactly like a real subprocess worker.
        coordinator, workers, scan = run_fleet(
            detached, layout, worker_count=1, options=options
        )
        assert_identical(
            baseline, signature(detached, detached.detect(layout, scan=scan))
        )

        documents = coordinator.trace_documents()
        assert documents, "worker never shipped spans"
        shipped_names = {
            span["name"] for doc in documents for span in doc["spans"]
        }
        assert "fleet.shard" in shipped_names
        assert all(doc["request_id"] == "rid-fleet-test" for doc in documents)

        coordinator_doc = {
            "role": "coordinator",
            "pid": 0,
            "request_id": coordinator.request_id,
            "epoch_unix": documents[0]["epoch_unix"],
            "spans": [],
        }
        merged = obs.merge_chrome_traces([coordinator_doc, *documents])
        rows = {
            event["args"]["name"]
            for event in merged["traceEvents"]
            if event["name"] == "process_name"
        }
        assert rows == {"coordinator", "worker:worker-0"}
        assert merged["metadata"]["request_id"] == "rid-fleet-test"

    def test_status_plane_reports_durations_workers_and_eta_fields(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        coordinator, workers, scan = run_fleet(detached, layout, worker_count=2)
        status = coordinator.status()
        assert status["request_id"] == coordinator.request_id
        assert status["done"] is True
        assert status["leases"] == []  # nothing outstanding
        assert status["stragglers"] == []
        assert status["eta_s"] is None
        assert status["durations"]["count"] == status["shards"]
        assert status["durations"]["p95"] >= status["durations"]["p50"] > 0
        assert status["elapsed_s"] > 0
        assert status["throughput_shards_per_s"] > 0
        details = {w["name"]: w for w in status["worker_details"]}
        assert sum(w["pushes"] for w in details.values()) == status["shards"]
        # Workers self-reported stats with their lease requests.
        assert sum(w["shards_done"] for w in details.values()) >= 0
        assert "cache" in status

    def test_outstanding_lease_appears_with_age_and_straggles_past_p95(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        with FleetCoordinator(
            detached, layout, options=FleetOptions(lease_ttl_s=60.0)
        ) as coordinator:
            client = FleetClient(coordinator.url)
            granted = client.post_json(
                "/fleet/v1/lease",
                {"worker": "slow", "fingerprint": coordinator.fingerprint},
            )[1]
            assert granted["status"] == "lease"
            # Seed one completed-duration sample so p95 exists and is
            # tiny: the outstanding lease immediately counts as a
            # straggler once older than it.
            coordinator._shard_wall[int(granted["shard"]) + 10_000] = 1e-9
            time.sleep(0.05)
            status = coordinator.status()
        (lease,) = status["leases"]
        assert lease["worker"] == "slow"
        assert lease["shard"] == int(granted["shard"])
        assert lease["age_s"] > 0
        assert lease["expires_in_s"] > 0
        assert status["stragglers"] == [lease["shard"]]

    def test_coordinator_serves_own_and_federated_metrics(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        coordinator, workers, scan = run_fleet(detached, layout, worker_count=1)
        rendered = coordinator.metrics.render()
        assert 'repro_fleet_pushes_total{outcome="accepted"}' in rendered
        assert "repro_fleet_shard_seconds_count" in rendered
        federated = coordinator.federated_metrics().render()
        assert 'fleet_member_up{member="coordinator"} 1' in federated
        assert 'repro_fleet_leases_total{outcome="granted"}' in federated

    def test_metrics_endpoints_served_over_http(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        with FleetCoordinator(detached, layout) as coordinator:
            client = FleetClient(coordinator.url)
            status, payload, content_type = client.request("GET", "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            status, state = client.get_json("/metrics/state")
            assert status == 200
            assert {"families"} <= set(state)
            status, payload, content_type = client.request(
                "GET", "/fleet/v1/metrics"
            )
            assert status == 200
            assert b"fleet_member_up" in payload

    def test_handshake_409_echoes_the_request_id(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        with FleetCoordinator(detached, layout) as coordinator:
            status, _, headers = FleetClient(coordinator.url).request_full(
                "POST",
                "/fleet/v1/lease",
                b'{"worker": "x", "fingerprint": "nope"}',
                headers={"X-Request-Id": "rid-409"},
            )
        assert status == 409
        assert headers["X-Request-Id"] == "rid-409"

    def test_cache_node_serves_metrics(self, cache_node):
        app, url = cache_node
        client = FleetClient(url)
        client.request("GET", "/cache/v1/margins/fp/missing")
        status, payload, _ = client.request("GET", "/metrics")
        assert status == 200
        assert b'repro_fleet_cache_ops_total{outcome="miss"} 1' in payload


# ----------------------------------------------------------------------
# lease protocol edges: handshake, corrupt push, first push wins
# ----------------------------------------------------------------------
class TestLeaseProtocol:
    def test_fingerprint_mismatch_is_rejected_with_409(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        with FleetCoordinator(detached, layout) as coordinator:
            status, document = FleetClient(coordinator.url).post_json(
                "/fleet/v1/lease",
                {"worker": "imposter", "fingerprint": "0" * 64},
            )
        assert status == 409
        assert document["status"] == "fingerprint_mismatch"
        assert document["expected"] == coordinator.fingerprint

    def test_corrupt_push_rejected_then_first_valid_push_wins(
        self, detached, small_benchmark
    ):
        layout = small_benchmark.testing.layout
        # A long TTL keeps the reaper out of this test's way.
        with FleetCoordinator(
            detached, layout, options=FleetOptions(lease_ttl_s=60.0)
        ) as coordinator:
            client = FleetClient(coordinator.url)
            granted = client.post_json(
                "/fleet/v1/lease",
                {"worker": "tester", "fingerprint": coordinator.fingerprint},
            )[1]
            shard_id, lease_id = int(granted["shard"]), int(granted["lease"])
            push_path = f"/fleet/v1/push?shard={shard_id}&lease={lease_id}"

            # Corrupt envelope: rejected with 400, shard stays incomplete.
            status, _ = client.post_blob(push_path, b"not an RPCB1 envelope")
            assert status == 400
            assert coordinator.pushes_rejected == 1
            assert coordinator.status()["completed"] == 0

            # A tampered-payload envelope (valid magic, wrong digest) too.
            record = evaluate_shard(
                detached.config,
                detached.model_,
                layout,
                1,
                granted["anchors"],
            )
            blob = wrap_blob(encode_shard_record(record))
            tampered = blob[:-1] + bytes([blob[-1] ^ 0xFF])
            status, _ = client.post_blob(push_path, tampered)
            assert status == 400
            assert coordinator.pushes_rejected == 2

            # The intact push lands; a duplicate is acknowledged stale.
            status, answer = client.post_blob(push_path, blob)
            assert (status, answer["status"]) == (200, "ok")
            status, answer = client.post_blob(push_path, blob)
            assert (status, answer["status"]) == (200, "stale")
            assert coordinator.pushes_accepted == 1
            assert coordinator.pushes_stale == 1


# ----------------------------------------------------------------------
# remote cache tier: corruption is a miss, never a decode
# ----------------------------------------------------------------------
@pytest.fixture()
def cache_node():
    app = CacheServer(store=MemoryCacheStore())
    with FleetHTTPServer(app) as server:
        yield app, server.url


class TestRemoteCache:
    def test_round_trip_through_remote_tier(self, cache_node):
        app, url = cache_node
        row = np.array([0.5, -1.25, 3.0])
        writer = HotspotCache(stores=[RemoteCacheStore([url])])
        writer.put_margins("fp", "key", row)
        assert app.puts == 1

        reader = HotspotCache(stores=[RemoteCacheStore([url])])
        assert np.array_equal(reader.get_margins("fp", "key"), row)
        assert reader.stats_dict()["remote_hits"] == 1

    def test_corrupt_remote_blob_is_a_miss(self, cache_node):
        app, url = cache_node
        writer = HotspotCache(stores=[RemoteCacheStore([url])])
        writer.put_margins("fp", "key", np.array([1.0, 2.0]))

        # Rot the stored payload in place — the digest no longer matches.
        ((blob_key, blob),) = app.store._blobs.items()
        app.store._blobs[blob_key] = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        assert open_blob(app.store._blobs[blob_key]) is None

        reader = HotspotCache(stores=[RemoteCacheStore([url])])
        assert reader.get_margins("fp", "key") is None
        stats = reader.stats_dict()
        assert stats["remote_corrupt"] == 1
        assert stats["margin_misses"] == 1

    def test_server_rejects_corrupt_put(self, cache_node):
        app, url = cache_node
        status, payload, _ = FleetClient(url).request(
            "PUT", "/cache/v1/margins/fp/key", b"garbage", BLOB_TYPE
        )
        assert status == 400
        assert app.rejected_corrupt == 1
        assert len(app.store) == 0

    def test_unreachable_node_degrades_to_miss(self):
        store = RemoteCacheStore(["http://127.0.0.1:9"], timeout=0.2)
        cache = HotspotCache(stores=[store])
        cache.put_margins("fp", "key", np.array([1.0]))
        cache.clear_memory()  # force the read through the remote tier
        assert cache.get_margins("fp", "key") is None
        assert store.errors >= 2
        # Enough consecutive failures mark the lone node (and tier) down.
        assert cache.get_margins("fp", "key") is None
        assert not store.healthy()


# ----------------------------------------------------------------------
# routing + membership primitives
# ----------------------------------------------------------------------
class TestHashRing:
    NODES = ["http://a:1", "http://b:1", "http://c:1"]

    def test_deterministic_across_instances(self):
        left, right = HashRing(self.NODES), HashRing(list(reversed(self.NODES)))
        for i in range(64):
            assert left.node_for(f"key-{i}") == right.node_for(f"key-{i}")

    def test_fallback_order_covers_every_node_primary_first(self):
        ring = HashRing(self.NODES)
        order = ring.nodes_for("some-key")
        assert order[0] == ring.node_for("some-key")
        assert sorted(order) == sorted(self.NODES)

    def test_removing_a_node_only_remaps_its_own_keys(self):
        full = HashRing(self.NODES)
        shrunk = HashRing(self.NODES[:2])
        for i in range(256):
            key = f"key-{i}"
            home = full.node_for(key)
            if home in self.NODES[:2]:
                assert shrunk.node_for(key) == home

    def test_empty_ring_raises(self):
        with pytest.raises(FleetError):
            HashRing([]).node_for("key")


class TestMembership:
    def test_heartbeat_keeps_a_member_alive(self):
        table = MemberTable(ttl_s=0.2)
        table.register("replica-1", "http://x:1", kind="serve", version="v1")
        assert table.heartbeat("replica-1")
        assert not table.heartbeat("never-registered")
        assert [m.name for m in table.members(kind="serve")] == ["replica-1"]

        time.sleep(0.3)
        assert table.members(kind="serve") == []
        assert table.expire() == ["replica-1"]
        assert len(table) == 0

    def test_versions_reports_replica_drift(self):
        table = MemberTable()
        table.register("r1", "http://x:1", kind="serve", version="aaaa")
        table.register("r2", "http://y:1", kind="serve", version="bbbb")
        assert table.versions(kind="serve") == {"aaaa", "bbbb"}
        table.heartbeat("r2", version="aaaa")
        assert table.versions(kind="serve") == {"aaaa"}


class _EchoReplica:
    """A fake serve replica that answers /v1/predict with its own name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def handle(self, method, path, body, headers):
        if method == "POST" and path == "/v1/predict":
            return 200, {"replica": self.name}, JSON_TYPE
        return 404, {"error": "no route"}, JSON_TYPE


class TestFrontend:
    def test_round_robin_cursor(self):
        rotation = RoundRobin(["a", "b"])
        assert [rotation.next() for _ in range(4)] == ["a", "b", "a", "b"]
        assert sorted(rotation.ordered()) == ["a", "b"]

    def test_predict_round_robins_and_fails_over(self):
        frontend = FleetFrontend(MemberTable(ttl_s=30.0))
        with FleetHTTPServer(frontend) as front, FleetHTTPServer(
            _EchoReplica("r1")
        ) as one, FleetHTTPServer(_EchoReplica("r2")) as two:
            client = FleetClient(front.url)
            for name, url in (("r1", one.url), ("r2", two.url)):
                status, _ = client.post_json(
                    "/fleet/v1/register",
                    {"name": name, "url": url, "kind": "serve", "version": "v"},
                )
                assert status == 200

            answers = {
                client.post_json("/v1/predict", {})[1]["replica"]
                for _ in range(4)
            }
            assert answers == {"r1", "r2"}  # both replicas take traffic

            # A third replica registers and immediately drops dead (its
            # URL never answers): every predict still lands on a live
            # one, falling through the corpse.
            client.post_json(
                "/fleet/v1/register",
                {
                    "name": "corpse",
                    "url": "http://127.0.0.1:9",
                    "kind": "serve",
                    "version": "v",
                },
            )
            for _ in range(6):
                status, document = client.post_json("/v1/predict", {})
                assert status == 200
                assert document["replica"] in {"r1", "r2"}

            status, health = client.get_json("/healthz")
            assert status == 200
            assert health["replicas"] == 3  # corpse still within its TTL
            assert health["forwarded"] >= 10

    def test_predict_forwards_the_callers_request_id(self):
        """The id a client sends the frontend reaches the replica verbatim
        and comes back in the frontend's response headers."""

        class _HeaderEcho:
            def handle(self, method, path, body, headers):
                return 200, {"rid": headers.get("X-Request-Id")}, JSON_TYPE

        frontend = FleetFrontend(MemberTable(ttl_s=30.0))
        with FleetHTTPServer(frontend) as front, FleetHTTPServer(
            _HeaderEcho()
        ) as replica:
            client = FleetClient(front.url)
            client.post_json(
                "/fleet/v1/register",
                {"name": "r", "url": replica.url, "kind": "serve", "version": "v"},
            )
            status, payload, headers = client.request_full(
                "POST",
                "/v1/predict",
                b"{}",
                headers={"X-Request-Id": "rid-proxy"},
            )
        assert status == 200
        assert b'"rid": "rid-proxy"' in payload
        assert headers["X-Request-Id"] == "rid-proxy"
        assert "fleet_frontend_requests_total" in frontend.metrics.render()

    def test_no_replicas_is_503(self):
        frontend = FleetFrontend(MemberTable())
        with FleetHTTPServer(frontend) as front:
            status, document = FleetClient(front.url).post_json(
                "/v1/predict", {}
            )
        assert status == 503
        assert "replica" in document["error"]

    def test_heartbeat_for_unknown_member_is_404(self):
        frontend = FleetFrontend(MemberTable())
        with FleetHTTPServer(frontend) as front:
            status, _ = FleetClient(front.url).post_json(
                "/fleet/v1/heartbeat", {"name": "ghost"}
            )
        assert status == 404


# ----------------------------------------------------------------------
# CLI chaos: coordinator SIGKILL + --resume, worker SIGKILL + respawn
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet_workdir(fitted, small_benchmark, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet-cli")
    save_detector(fitted, path / "model.npz", name="fleet-cli")
    save_layout_gds(small_benchmark.testing.layout, path / "layout.gds")
    return path


def _run_cli(arguments, cwd, extra_env=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(faults.ENV_VAR, None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _core_lines(stdout: str) -> list[str]:
    return sorted(line for line in stdout.splitlines() if line.startswith("  core"))


@pytest.fixture(scope="module")
def reference_scan(fleet_workdir):
    """Single-node thread-backend scan of the same saved model + layout."""
    result = _run_cli(
        ["scan", "--model", "model.npz", "--layout", "layout.gds", "--no-manifest"],
        fleet_workdir,
    )
    assert result.returncode == 0, result.stderr
    cores = _core_lines(result.stdout)
    assert cores  # the scan actually found hotspots
    return cores


class TestCliFleetScan:
    FLEET = [
        "fleet-scan",
        "--model", "model.npz",
        "--layout", "layout.gds",
        "--fleet-workers", "2",
        "--journal-dir", "journal",
    ]

    def test_sigkilled_coordinator_resumes_identically(
        self, fleet_workdir, reference_scan
    ):
        # The fault plan SIGKILLs the whole driver — coordinator, journal
        # lock and all — at the second accepted push.  Nothing cleans up;
        # the journal on disk is the only survivor.
        killed = _run_cli(
            self.FLEET,
            fleet_workdir,
            extra_env={faults.ENV_VAR: "fleet.push=kill:1@1!1"},
        )
        assert killed.returncode != 0
        journal_lines = (
            (fleet_workdir / "journal" / "journal.jsonl").read_text().splitlines()
        )
        assert len(journal_lines) >= 2  # header + >=1 accepted shard

        resumed = _run_cli([*self.FLEET, "--resume"], fleet_workdir)
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stderr
        assert _core_lines(resumed.stdout) == reference_scan
        # Success cleared the journal.
        assert not (fleet_workdir / "journal" / "journal.jsonl").exists()

    def test_sigkilled_workers_are_respawned_and_output_is_identical(
        self, fleet_workdir, reference_scan
    ):
        # Each worker SIGKILLs itself on its second lease; the reaper
        # expires the abandoned leases and the supervisor respawns the
        # workers, so the scan still completes — bit-identically.
        survived = _run_cli(
            [*self.FLEET, "--journal-dir", "chaos-journal", "--lease-ttl", "1.5"],
            fleet_workdir,
            extra_env={faults.ENV_VAR: "fleet.lease=kill:1@1!1"},
        )
        assert survived.returncode == 0, survived.stderr
        assert "respawning" in survived.stderr
        assert "leases expired" in survived.stderr
        assert _core_lines(survived.stdout) == reference_scan
