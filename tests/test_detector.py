"""End-to-end tests of the HotspotDetector facade and training stages."""

import numpy as np
import pytest

from repro.core.config import DetectorConfig
from repro.core.detector import HotspotDetector
from repro.core.feedback import train_feedback_kernel
from repro.core.training import core_string_key, train_multi_kernel
from repro.errors import NotFittedError, SvmError
from repro.layout.clip import ClipLabel, ClipSet, ClipSpec


class TestTraining:
    def test_multi_kernel_structure(self, small_benchmark):
        config = DetectorConfig.ours()
        model = train_multi_kernel(small_benchmark.training, config)
        assert len(model.kernels) == len(model.hotspot_clusters)
        assert len(model.kernels) >= 2
        # derivatives: 5x the original hotspot count
        assert len(model.hotspot_clips) == 5 * len(
            small_benchmark.training.hotspots()
        )
        # downsampling reduced the nonhotspot population
        assert len(model.nonhotspot_centroids) <= len(
            small_benchmark.training.non_hotspots()
        )

    def test_kernels_have_gates(self, small_benchmark):
        model = train_multi_kernel(small_benchmark.training, DetectorConfig.ours())
        for kernel in model.kernels:
            assert kernel.key_set
            # a kernel's own hotspots pass its gate
            cluster = model.hotspot_clusters[kernel.cluster_index]
            clip = model.hotspot_clips[cluster.members[0]]
            assert core_string_key(clip) in kernel.key_set

    def test_basic_has_single_ungated_kernel(self, small_benchmark):
        model = train_multi_kernel(small_benchmark.training, DetectorConfig.basic())
        assert len(model.kernels) == 1
        assert model.kernels[0].key_set is None

    def test_training_set_self_classification(self, small_benchmark):
        """Kernels classify (most of) their own training data correctly."""
        config = DetectorConfig.ours()
        model = train_multi_kernel(small_benchmark.training, config)
        hotspots = small_benchmark.training.hotspots()
        flags = model.predict(hotspots)
        assert flags.mean() >= 0.9

    def test_missing_class_rejected(self):
        spec = ClipSpec()
        empty = ClipSet(spec)
        with pytest.raises(SvmError):
            train_multi_kernel(empty, DetectorConfig.ours())

    def test_parallel_training_equivalent(self, small_benchmark):
        serial = train_multi_kernel(small_benchmark.training, DetectorConfig.ours())
        parallel_cfg = DetectorConfig(parallel=True, worker_count=4)
        parallel = train_multi_kernel(small_benchmark.training, parallel_cfg)
        assert len(serial.kernels) == len(parallel.kernels)
        probe = small_benchmark.training.hotspots()[:4]
        assert np.allclose(serial.margins(probe), parallel.margins(probe))


class TestFeedback:
    def test_feedback_trains_on_ambit_benchmark(self, ambit_benchmark):
        config = DetectorConfig.ours()
        model = train_multi_kernel(ambit_benchmark.training, config)
        feedback = train_feedback_kernel(model, config)
        assert feedback is not None
        assert feedback.extras_used > 0
        assert feedback.hotspots_used > 0

    def test_feedback_never_reclaims_unknowns(self, ambit_benchmark):
        config = DetectorConfig.ours()
        model = train_multi_kernel(ambit_benchmark.training, config)
        feedback = train_feedback_kernel(model, config)
        if feedback is None:
            pytest.skip("no extras in self-evaluation")
        # a pure-fabric clip is far from the feedback kernel's experience
        from repro.data.synth import build_fabric_clip

        rng = np.random.default_rng(99)
        unknown = build_fabric_clip(rng, config.spec)
        assert feedback.keep_mask([unknown])[0]


class _EveryOtherFeedback:
    """Stub feedback kernel: reclaims every second flagged clip."""

    def keep_mask(self, clips):
        return np.array([i % 2 == 0 for i in range(len(clips))], dtype=bool)


class TestFeedbackFiltering:
    """The feedback stage must filter flags without disturbing clip order."""

    @pytest.fixture(scope="class")
    def fitted(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        return detector

    def _reference_filter(self, flags, keep_of):
        """The pre-vectorization cursor loop, kept as the oracle."""
        flags = flags.copy()
        flagged = np.flatnonzero(flags)
        keep = keep_of(len(flagged))
        cursor = 0
        for index in flagged:
            if not keep[cursor]:
                flags[index] = False
            cursor += 1
        return flags

    def test_filtering_preserves_clip_order(self, fitted, small_benchmark):
        clips = (
            small_benchmark.training.hotspots()[:6]
            + small_benchmark.training.non_hotspots()[:6]
        )
        detector = HotspotDetector(fitted.config)
        detector.model_ = fitted.model_
        detector.feedback_ = _EveryOtherFeedback()

        raw = fitted.model_.margins(clips) >= fitted.config.decision_threshold
        expected = self._reference_filter(
            raw, lambda n: [i % 2 == 0 for i in range(n)]
        )
        flags = detector.predict_clips(clips)
        assert np.array_equal(flags, expected)
        # The i-th flag answers the i-th clip: reordering the inputs
        # reorders the flags identically.
        order = np.random.default_rng(7).permutation(len(clips))
        reordered = detector.predict_clips([clips[i] for i in order])
        raw_reordered = raw[order]
        expected_reordered = self._reference_filter(
            raw_reordered, lambda n: [i % 2 == 0 for i in range(n)]
        )
        assert np.array_equal(reordered, expected_reordered)

    def test_real_feedback_matches_reference_loop(self, ambit_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(ambit_benchmark.training)
        if detector.feedback_ is None:
            pytest.skip("feedback did not train on this fixture")
        clips = (
            ambit_benchmark.training.hotspots()[:8]
            + ambit_benchmark.training.non_hotspots()[:8]
        )
        raw = detector.model_.margins(clips) >= detector.config.decision_threshold
        flagged = [clip for clip, f in zip(clips, raw) if f]
        keep = detector.feedback_.keep_mask(flagged)
        expected = self._reference_filter(raw, lambda n: keep)
        assert np.array_equal(detector.predict_clips(clips), expected)


class TestDetector:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            HotspotDetector().margins([])

    def test_fit_report(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        report = detector.fit(small_benchmark.training)
        assert report.kernels == report.hotspot_clusters
        assert report.upsampled_hotspots == 5 * len(
            small_benchmark.training.hotspots()
        )
        assert report.train_seconds > 0

    def test_detects_planted_hotspots(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        result = detector.score(small_benchmark.testing)
        assert result.score is not None
        assert result.score.accuracy >= 0.7
        # extras stay well below the candidate count
        assert result.score.extras < result.extraction.candidate_count * 0.05

    def test_threshold_tradeoff(self, small_benchmark):
        """Higher thresholds cannot increase reports (Fig. 15 monotonicity)."""
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        low = detector.score(small_benchmark.testing, threshold=-0.25)
        high = detector.score(small_benchmark.testing, threshold=0.75)
        assert high.flagged_before_feedback <= low.flagged_before_feedback
        assert high.score.hits <= low.score.hits

    def test_predict_clips_matches_training_labels(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        hotspots = small_benchmark.training.hotspots()
        non_hotspots = small_benchmark.training.non_hotspots()
        assert detector.predict_clips(hotspots).mean() >= 0.9
        assert detector.predict_clips(non_hotspots).mean() <= 0.35

    def test_removal_never_loses_accuracy(self, small_benchmark):
        with_removal = HotspotDetector(DetectorConfig.with_removal())
        without = HotspotDetector(DetectorConfig.with_topology())
        with_removal.fit(small_benchmark.training)
        without.fit(small_benchmark.training)
        scored_with = with_removal.score(small_benchmark.testing)
        scored_without = without.score(small_benchmark.testing)
        assert scored_with.score.hits >= scored_without.score.hits - 1
        assert scored_with.report_count <= scored_without.report_count

    def test_ablation_shape(self, small_benchmark):
        """Table III shape: topology beats the single huge kernel."""
        basic = HotspotDetector(DetectorConfig.basic())
        ours = HotspotDetector(DetectorConfig.ours())
        basic.fit(small_benchmark.training)
        ours.fit(small_benchmark.training)
        basic_result = basic.score(small_benchmark.testing)
        ours_result = ours.score(small_benchmark.testing)
        assert ours_result.score.hit_extra_ratio > basic_result.score.hit_extra_ratio

    def test_empty_layout(self, small_benchmark):
        from repro.layout.layout import Layout

        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        layout = Layout()
        layout.add_rect(1, __import__("repro.geometry.rect", fromlist=["Rect"]).Rect(0, 0, 100, 100))
        report = detector.detect(layout)
        assert report.report_count == 0

    def test_reports_labelled_hotspot(self, small_benchmark):
        detector = HotspotDetector(DetectorConfig.ours())
        detector.fit(small_benchmark.training)
        result = detector.score(small_benchmark.testing)
        assert all(r.label is ClipLabel.HOTSPOT for r in result.reports)

    def test_parallel_evaluation_equivalent(self, small_benchmark):
        serial = HotspotDetector(DetectorConfig.ours())
        serial.fit(small_benchmark.training)
        parallel = HotspotDetector(DetectorConfig(parallel=True, worker_count=4))
        parallel.fit(small_benchmark.training)
        a = serial.score(small_benchmark.testing)
        b = parallel.score(small_benchmark.testing)
        assert a.score.hits == b.score.hits
        assert a.score.extras == b.score.extras
